#include "graph/segcache.hpp"

#include <algorithm>
#include <cstring>

namespace xtra::graph {

void SegmentCache::Ref::release() {
  if (cache_ != nullptr && frame_ >= 0) cache_->unpin(frame_);
  cache_ = nullptr;
  frame_ = -1;
  data_ = nullptr;
  size_ = 0;
  owned_.clear();
}

SegmentCache::SegmentCache(sim::Comm& comm, std::vector<lid_t>&& entries,
                           const SegCacheOptions& opt)
    : opt_(opt), comm_(&comm) {
  total_entries_ = static_cast<count_t>(entries.size());
  seg_entries_ = std::max<count_t>(
      1, opt_.segment_bytes / static_cast<count_t>(sizeof(lid_t)));
  nseg_ = (total_entries_ + seg_entries_ - 1) / seg_entries_;
  const count_t seg_bytes = seg_entries_ * static_cast<count_t>(sizeof(lid_t));
  // Budget 0 (or anything under one segment) still gets one frame —
  // the cache degrades to per-access fetches, it never deadlocks.
  const count_t by_budget = std::max<count_t>(1, opt_.budget_bytes / seg_bytes);
  const count_t nframes = std::min(by_budget, std::max<count_t>(nseg_, 1));
  frames_.resize(static_cast<std::size_t>(nframes));
  frame_of_.assign(static_cast<std::size_t>(nseg_), -1);

  const std::size_t blob_bytes = entries.size() * sizeof(lid_t);
  if (opt_.backing == SegBacking::kMmap) {
    spill_ = std::make_unique<SpillFile>();
    if (blob_bytes > 0) spill_->append(entries.data(), blob_bytes);
    spill_->finalize();
  } else {
    lane_.open(comm, entries.empty() ? nullptr : entries.data(), blob_bytes,
               opt_.host_rank);
  }
  entries.clear();
  entries.shrink_to_fit();
}

SegmentCache::~SegmentCache() {
  // Closing the remote lane is collective (win_unexpose); destruction
  // is only safe where every rank destroys at the same point in its
  // collective sequence — true anywhere a graph goes out of scope in
  // this BSP codebase. Explicit close() first is still fine (no-op
  // here then).
  if (opt_.backing == SegBacking::kRemote && lane_.is_open() && comm_)
    lane_.close(*comm_);
}

void SegmentCache::close(sim::Comm& comm) {
  if (opt_.backing == SegBacking::kRemote) lane_.close(comm);
}

count_t SegmentCache::seg_len(count_t seg) const {
  const count_t begin = seg * seg_entries_;
  return std::min(seg_entries_, total_entries_ - begin);
}

void SegmentCache::read_raw(count_t entry_begin, count_t n_entries,
                            lid_t* dst, bool demand) {
  const std::size_t off =
      static_cast<std::size_t>(entry_begin) * sizeof(lid_t);
  const std::size_t len = static_cast<std::size_t>(n_entries) * sizeof(lid_t);
  if (opt_.backing == SegBacking::kMmap) {
    spill_->read(off, len, dst);
  } else {
    lane_.get(*comm_, off, len, dst);
  }
  stats_.seg_fetch_bytes += static_cast<count_t>(len);
  if (demand) {
    // Same deterministic latency model for both backings, so the
    // prefetch contract (on < off) holds without wall-clock noise.
    stats_.seg_stall_seconds +=
        sim::kModelAlphaSeconds +
        static_cast<double>(len) / sim::kModelBytesPerSecond;
  }
}

int SegmentCache::find_victim(bool for_prefetch) {
  const std::size_t n = frames_.size();
  // Clock sweep: first pass grants second chances (clears refbits),
  // so within 2n steps either a cold unpinned frame turns up or every
  // frame is pinned. Prefetch victims additionally skip frames whose
  // prefetched data hasn't been touched yet — prefetch must not evict
  // its own not-yet-consumed work.
  for (std::size_t step = 0; step < 2 * n; ++step) {
    Frame& f = frames_[clock_hand_];
    const std::size_t at = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (f.pins > 0) continue;
    if (for_prefetch && f.prefetched) continue;
    if (f.refbit) {
      f.refbit = false;
      continue;
    }
    return static_cast<int>(at);
  }
  return -1;
}

int SegmentCache::acquire(count_t seg) {
  XTRA_DEBUG_ASSERT(seg >= 0 && seg < nseg_);
  const int resident_frame = frame_of_[static_cast<std::size_t>(seg)];
  if (resident_frame >= 0) {
    Frame& f = frames_[static_cast<std::size_t>(resident_frame)];
    ++stats_.seg_hits;
    if (f.prefetched) {
      ++stats_.seg_prefetch_hits;
      f.prefetched = false;
    }
    f.refbit = true;
    ++f.pins;
    return resident_frame;
  }
  ++stats_.seg_misses;
  const int victim = find_victim(/*for_prefetch=*/false);
  if (victim < 0) return -1;  // every frame pinned: caller bounces
  Frame& f = frames_[static_cast<std::size_t>(victim)];
  if (f.seg != kNoSeg) {
    frame_of_[static_cast<std::size_t>(f.seg)] = -1;
    ++stats_.seg_evictions;
  }
  const count_t len = seg_len(seg);
  f.data.resize(static_cast<std::size_t>(len));
  read_raw(seg * seg_entries_, len, f.data.data(), /*demand=*/true);
  f.seg = seg;
  f.pins = 1;
  f.refbit = true;
  f.prefetched = false;
  frame_of_[static_cast<std::size_t>(seg)] = victim;
  return victim;
}

void SegmentCache::unpin(int frame) {
  Frame& f = frames_[static_cast<std::size_t>(frame)];
  XTRA_DEBUG_ASSERT(f.pins > 0);
  --f.pins;
}

int SegmentCache::pinned_frames() const {
  int n = 0;
  for (const Frame& f : frames_)
    if (f.pins > 0) ++n;
  return n;
}

bool SegmentCache::prefetch_one(count_t seg) {
  if (seg < 0 || seg >= nseg_) return false;
  if (frame_of_[static_cast<std::size_t>(seg)] >= 0) return true;
  const int victim = find_victim(/*for_prefetch=*/true);
  if (victim < 0) return false;
  Frame& f = frames_[static_cast<std::size_t>(victim)];
  if (f.seg != kNoSeg) {
    frame_of_[static_cast<std::size_t>(f.seg)] = -1;
    ++stats_.seg_evictions;
  }
  const count_t len = seg_len(seg);
  f.data.resize(static_cast<std::size_t>(len));
  read_raw(seg * seg_entries_, len, f.data.data(), /*demand=*/false);
  f.seg = seg;
  f.pins = 0;
  f.refbit = true;
  f.prefetched = true;
  frame_of_[static_cast<std::size_t>(seg)] = victim;
  return true;
}

void SegmentCache::maybe_prefetch(count_t just_used) {
  if (!opt_.prefetch || frames_.size() <= 1) return;
  const count_t want = std::min<count_t>(
      opt_.prefetch_depth, static_cast<count_t>(frames_.size()) - 1);
  // Try to locate the access on the plan within a bounded look-ahead:
  // the plan is advisory, so a site the engine didn't enumerate (or a
  // skipped vertex) must not derail the cursor permanently.
  const std::size_t limit =
      std::min(plan_.size(), plan_cursor_ + kPlanLookahead);
  std::size_t matched = plan_.size();
  for (std::size_t i = plan_cursor_; i < limit; ++i) {
    if (plan_[i] == just_used) {
      matched = i;
      break;
    }
  }
  if (matched < plan_.size()) {
    plan_cursor_ = matched + 1;
    count_t fetched = 0;
    for (std::size_t i = plan_cursor_; i < plan_.size() && fetched < want;
         ++i) {
      const count_t s = plan_[i];
      if (frame_of_[static_cast<std::size_t>(s)] >= 0) continue;
      if (!prefetch_one(s)) break;
      ++fetched;
    }
    return;
  }
  // Off-plan: sequential next-segments fallback.
  count_t fetched = 0;
  for (count_t s = just_used + 1; s < nseg_ && fetched < want; ++s) {
    if (frame_of_[static_cast<std::size_t>(s)] >= 0) continue;
    if (!prefetch_one(s)) break;
    ++fetched;
  }
}

SegmentCache::Ref SegmentCache::borrow(count_t begin, count_t end) {
  XTRA_DEBUG_ASSERT(begin >= 0 && begin <= end && end <= total_entries_);
  Ref ref;
  if (begin == end) return ref;  // zero-degree: no fetch, no stats
  const count_t first = begin / seg_entries_;
  const count_t last = (end - 1) / seg_entries_;
  if (first == last) {
    const int frame = acquire(first);
    if (frame >= 0) {
      const Frame& f = frames_[static_cast<std::size_t>(frame)];
      ref.cache_ = this;
      ref.frame_ = frame;
      ref.data_ = f.data.data() + (begin - first * seg_entries_);
      ref.size_ = static_cast<std::size_t>(end - begin);
    } else {
      // Every frame is pinned by live borrows: refuse to evict and
      // bounce — read exactly the requested range into the ref.
      ref.owned_.resize(static_cast<std::size_t>(end - begin));
      read_raw(begin, end - begin, ref.owned_.data(), /*demand=*/true);
      ref.data_ = ref.owned_.data();
      ref.size_ = ref.owned_.size();
    }
    maybe_prefetch(first);
    return ref;
  }
  // Range spans segments: stitch into a ref-owned buffer one segment
  // at a time, so a single frame always suffices (budget < one
  // segment's worth of vertices still works).
  ref.owned_.resize(static_cast<std::size_t>(end - begin));
  lid_t* out = ref.owned_.data();
  for (count_t s = first; s <= last; ++s) {
    const count_t s_begin = std::max(begin, s * seg_entries_);
    const count_t s_end = std::min(end, s * seg_entries_ + seg_len(s));
    const int frame = acquire(s);
    if (frame >= 0) {
      const Frame& f = frames_[static_cast<std::size_t>(frame)];
      std::memcpy(out, f.data.data() + (s_begin - s * seg_entries_),
                  static_cast<std::size_t>(s_end - s_begin) * sizeof(lid_t));
      unpin(frame);
    } else {
      read_raw(s_begin, s_end - s_begin, out, /*demand=*/true);
    }
    out += s_end - s_begin;
    maybe_prefetch(s);
  }
  ref.data_ = ref.owned_.data();
  ref.size_ = ref.owned_.size();
  return ref;
}

void SegmentCache::set_plan(std::vector<count_t> plan) {
  plan_ = std::move(plan);
  plan_cursor_ = 0;
}

std::vector<lid_t> SegmentCache::read_all() {
  std::vector<lid_t> out(static_cast<std::size_t>(total_entries_));
  if (total_entries_ == 0) return out;
  const std::size_t bytes =
      static_cast<std::size_t>(total_entries_) * sizeof(lid_t);
  if (opt_.backing == SegBacking::kMmap) {
    spill_->read(0, bytes, out.data());
  } else {
    lane_.get(*comm_, 0, bytes, out.data());
  }
  return out;
}

}  // namespace xtra::graph
