// Vertex ownership maps (the 1D distributions of paper §III-A).
//
// "When distributing the graph for the partitioner, we utilize either
//  random and block distributions of the vertices."  Both are
// arithmetic, so any rank can compute any vertex's owner without
// communication. A third, explicit, map supports redistributing a
// graph by a computed partition (used by the analytics and SpMV
// experiments, Fig 8 / Table III).
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace xtra::graph {

class VertexDist {
 public:
  enum class Kind { kBlock, kRandom, kExplicit };

  /// Contiguous ranges of ~n/nranks vertices per rank.
  static VertexDist block(gid_t n, int nranks) {
    return VertexDist(Kind::kBlock, n, nranks, 0, nullptr);
  }

  /// Pseudo-random ownership via a stateless hash; `salt` picks the
  /// permutation deterministically.
  static VertexDist random(gid_t n, int nranks, std::uint64_t salt = 17) {
    return VertexDist(Kind::kRandom, n, nranks, salt, nullptr);
  }

  /// Ownership given explicitly per vertex (e.g. a partition vector
  /// replicated on all ranks). owners->size() must equal n and every
  /// entry must lie in [0, nranks).
  static VertexDist explicit_map(
      gid_t n, int nranks, std::shared_ptr<const std::vector<int>> owners) {
    XTRA_ASSERT(owners && owners->size() == n);
    return VertexDist(Kind::kExplicit, n, nranks, 0, std::move(owners));
  }

  Kind kind() const { return kind_; }
  gid_t n_global() const { return n_; }
  int nranks() const { return nranks_; }

  /// Owning rank of global vertex v.
  int owner(gid_t v) const {
    XTRA_DEBUG_ASSERT(v < n_);
    switch (kind_) {
      case Kind::kBlock: {
        // First `rem` ranks own base+1 vertices, the rest own base.
        const gid_t base = n_ / static_cast<gid_t>(nranks_);
        const gid_t rem = n_ % static_cast<gid_t>(nranks_);
        const gid_t big = (base + 1) * rem;
        if (v < big) return static_cast<int>(v / (base + 1));
        return static_cast<int>(rem + (v - big) / (base == 0 ? 1 : base));
      }
      case Kind::kRandom:
        return static_cast<int>(
            hash_to_bucket(v, salt_, static_cast<std::uint64_t>(nranks_)));
      case Kind::kExplicit:
        return (*owners_)[static_cast<std::size_t>(v)];
    }
    return 0;
  }

  /// For block distributions only: the [first, last) gid range of rank.
  std::pair<gid_t, gid_t> block_range(int rank) const {
    XTRA_ASSERT(kind_ == Kind::kBlock);
    const gid_t base = n_ / static_cast<gid_t>(nranks_);
    const gid_t rem = n_ % static_cast<gid_t>(nranks_);
    const auto r = static_cast<gid_t>(rank);
    const gid_t first = r * base + std::min(r, rem);
    const gid_t last = first + base + (r < rem ? 1 : 0);
    return {first, last};
  }

 private:
  VertexDist(Kind kind, gid_t n, int nranks, std::uint64_t salt,
             std::shared_ptr<const std::vector<int>> owners)
      : kind_(kind), n_(n), nranks_(nranks), salt_(salt),
        owners_(std::move(owners)) {
    XTRA_ASSERT(nranks >= 1);
  }

  Kind kind_;
  gid_t n_;
  int nranks_;
  std::uint64_t salt_;
  std::shared_ptr<const std::vector<int>> owners_;
};

}  // namespace xtra::graph
