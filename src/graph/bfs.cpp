#include "graph/bfs.hpp"

#include <limits>

#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"

namespace xtra::graph {

count_t bfs_levels(sim::Comm& comm, const DistGraph& g, gid_t root,
                   std::vector<count_t>& levels, bool use_in_edges) {
  const int nranks = comm.size();
  levels.assign(g.n_total(), kUnreached);

  std::vector<lid_t> frontier;
  if (g.owner_of_gid(root) == comm.rank()) {
    const lid_t l = g.lid_of(root);
    XTRA_ASSERT(l != kInvalidLid);
    levels[l] = 0;
    frontier.push_back(l);
  }

  // Persistent across levels: notification bucketing and the wire
  // engine reuse their buffers every superstep.
  comm::DestBuckets<gid_t> buckets;
  comm::Exchanger ex;
  std::vector<gid_t> notify;  // ghost gids reached this level

  count_t level = 0;
  count_t max_level = 0;
  while (comm.allreduce_or(!frontier.empty())) {
    std::vector<lid_t> next;
    buckets.begin(nranks);
    notify.clear();
    for (const lid_t v : frontier) {
      const auto nbrs = use_in_edges ? g.in_neighbors(v) : g.neighbors(v);
      for (const lid_t u : nbrs) {
        if (levels[u] != kUnreached) continue;
        levels[u] = level + 1;
        if (g.is_owned(u)) {
          next.push_back(u);
        } else {
          notify.push_back(g.gid_of(u));
          buckets.count(g.owner_of(u));
        }
      }
    }
    // Group notifications by owner for the exchange.
    buckets.commit();
    for (const gid_t gid : notify) buckets.push(g.owner_of_gid(gid), gid);
    const std::span<const gid_t> reached = ex.exchange(comm, buckets);
    for (const gid_t gid : reached) {
      const lid_t l = g.lid_of(gid);
      XTRA_ASSERT(l != kInvalidLid && g.is_owned(l));
      if (levels[l] == kUnreached) {
        levels[l] = level + 1;
        next.push_back(l);
      }
    }
    if (!next.empty()) max_level = level + 1;
    frontier = std::move(next);
    ++level;
  }
  return comm.allreduce_max(max_level);
}

count_t estimate_diameter(sim::Comm& comm, const DistGraph& g, int rounds,
                          gid_t first_root) {
  if (g.n_global() == 0) return 0;
  gid_t root = first_root % g.n_global();
  count_t best = 0;
  std::vector<count_t> levels;
  for (int r = 0; r < rounds; ++r) {
    const count_t ecc = bfs_levels(comm, g, root, levels);
    best = std::max(best, ecc);
    // Pick the smallest gid on the farthest level as the next root
    // (deterministic stand-in for the paper's random farthest vertex).
    gid_t candidate = std::numeric_limits<gid_t>::max();
    for (lid_t v = 0; v < g.n_local(); ++v)
      if (levels[v] == ecc) candidate = std::min(candidate, g.gid_of(v));
    candidate = comm.allreduce_min(candidate);
    if (candidate == std::numeric_limits<gid_t>::max() || candidate == root)
      break;  // isolated root or converged eccentricity
    root = candidate;
  }
  return best;
}

}  // namespace xtra::graph
