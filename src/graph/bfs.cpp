#include "graph/bfs.hpp"

#include <limits>

#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "graph/frontier.hpp"

namespace xtra::graph {

count_t bfs_levels(sim::Comm& comm, const DistGraph& g, gid_t root,
                   std::vector<count_t>& levels, bool use_in_edges) {
  levels.assign(g.n_total(), kUnreached);

  std::vector<lid_t> frontier;
  if (g.owner_of_gid(root) == comm.rank()) {
    const lid_t l = g.lid_of(root);
    XTRA_ASSERT(l != kInvalidLid);
    levels[l] = 0;
    frontier.push_back(l);
  }

  // Persistent across levels: the stepper's notification bucketing
  // and wire engine reuse their buffers every superstep. Each level
  // runs the shared overlapped frontier step: the notify exchange
  // starts as soon as the ghost pass staged it and drains after the
  // owned-frontier expansion.
  FrontierStepper<gid_t> stepper;
  std::vector<lid_t> next;

  count_t level = 0;
  count_t max_level = 0;
  const auto try_mark = [&](lid_t u) {
    if (levels[u] != kUnreached) return false;
    levels[u] = level + 1;
    return true;
  };
  while (comm.allreduce_or(!frontier.empty())) {
    stepper.step(
        comm, g, frontier, next,
        [&](lid_t v) {
          return use_in_edges ? g.in_arcs(v) : g.arcs(v);
        },
        [&](lid_t /*v*/, lid_t u) { return levels[u] == kUnreached; },
        [&](lid_t /*v*/, lid_t u) { return try_mark(u); },
        [&](lid_t l) { return g.gid_of(l); },
        [&](const gid_t gid) {
          const lid_t l = g.lid_of(gid);
          XTRA_ASSERT(l != kInvalidLid && g.is_owned(l));
          return try_mark(l) ? l : kInvalidLid;
        });
    if (!next.empty()) max_level = level + 1;
    std::swap(frontier, next);
    ++level;
  }
  return comm.allreduce_max(max_level);
}

count_t estimate_diameter(sim::Comm& comm, const DistGraph& g, int rounds,
                          gid_t first_root) {
  if (g.n_global() == 0) return 0;
  gid_t root = first_root % g.n_global();
  count_t best = 0;
  std::vector<count_t> levels;
  for (int r = 0; r < rounds; ++r) {
    const count_t ecc = bfs_levels(comm, g, root, levels);
    best = std::max(best, ecc);
    // Pick the smallest gid on the farthest level as the next root
    // (deterministic stand-in for the paper's random farthest vertex).
    gid_t candidate = std::numeric_limits<gid_t>::max();
    for (lid_t v = 0; v < g.n_local(); ++v)
      if (levels[v] == ecc) candidate = std::min(candidate, g.gid_of(v));
    candidate = comm.allreduce_min(candidate);
    if (candidate == std::numeric_limits<gid_t>::max() || candidate == root)
      break;  // isolated root or converged eccentricity
    root = candidate;
  }
  return best;
}

}  // namespace xtra::graph
