// Distributed level-synchronous breadth-first search.
//
// A graph primitive shared by the diameter estimator (Table I), the
// XtraPuLP initialization phase's conceptual ancestor, and the
// analytics suite (harmonic centrality, SCC, WCC seeding). Each BFS
// level is one superstep: local frontier expansion, then an Alltoallv
// notifying owners of newly-reached ghost vertices.
#pragma once

#include <vector>

#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

namespace xtra::graph {

inline constexpr count_t kUnreached = -1;

/// Runs BFS from the (single) global root. On return, levels[l] is the
/// hop distance of local vertex l (owned and ghost entries are both
/// filled), or kUnreached. Returns the eccentricity of the root over
/// the reachable set (max level, globally reduced). Collective.
///
/// When `use_in_edges` is true the search follows in-edges instead
/// (reverse BFS on directed graphs).
count_t bfs_levels(sim::Comm& comm, const DistGraph& g, gid_t root,
                   std::vector<count_t>& levels, bool use_in_edges = false);

/// Approximate diameter via `rounds` iterated BFS sweeps: each sweep
/// starts from a vertex on the farthest level of the previous sweep
/// (the paper's Table I estimator). Collective; returns the max
/// eccentricity observed.
count_t estimate_diameter(sim::Comm& comm, const DistGraph& g,
                          int rounds = 10, gid_t first_root = 0);

}  // namespace xtra::graph
