// Shared overlapped frontier-expansion step for level-synchronous
// traversal kernels (graph::bfs_levels, SCC's masked reachability,
// the engine's frontier vertex programs, delta-capped SSSP).
//
// One superstep of the frontier protocol, overlapped: a single
// adjacency scan relaxes ghost neighbors and stages the owner
// notifications (so the exchange starts as early as possible) while
// merely *collecting* the owned candidate edges; the owned
// relaxations and next-frontier compaction run while the
// notifications are on the wire, and the arrivals are applied after
// the drain. For monotone relaxations (BFS's first-hit mark, SSSP's
// min-distance) the marks and the next-frontier order are identical
// to a single interleaved scan — ghost and owned neighbor sets are
// disjoint, and first-improvement-wins compaction preserves traversal
// order — so callers get the overlap for free without a second edge
// traversal.
//
// Generalized from the PR-4 gid-only step: the wire record is now a
// caller-chosen `Notify` type (BFS ships bare gids; SSSP ships
// {gid, dist} pairs), built at staging time from the ghost's
// *post-scan* state so several relaxations of one ghost in a level
// collapse into one record carrying the best value.
//
// The invariant that makes the overlap safe lives here, once: the
// DestBuckets' staging is stable from commit() until the next
// begin(), so the exchange may slice it in place (start_inplace), and
// only one exchange is in flight across the two passes.
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace xtra::graph {

/// Persistent scratch + wire engine for a frontier traversal: the
/// notification bucketing, the per-level candidate/touched lists, and
/// the newly-reached dedup mask all reuse their buffers every level.
///
/// Hook contract per step(comm, g, frontier, next, ...):
///  * nbrs(v) — neighbor span (lids) to follow out of frontier vertex v
///  * improves(v, u) — read-only test: could the edge (v, u) improve
///    u right now? (BFS: u unreached; SSSP: dist[v] + w < dist[u])
///  * relax(v, u) — apply the edge; returns whether u actually
///    improved. Called at scan time for ghost u (the local ghost copy
///    absorbs the best value) and mid-flight for owned candidates (so
///    the marking work overlaps the wire). Must be monotone: a later
///    relax may only improve on an earlier one.
///  * make_notify(l) — wire record for touched ghost l, built after
///    the scan (reads l's final post-scan state)
///  * receive(n) — apply an arrival on the owner; returns the owned
///    lid to add to the next frontier, or kInvalidLid when the
///    arrival did not improve it.
/// Newly improved owned vertices land in `next` (cleared first),
/// deduplicated: candidates in first-improvement scan order, then
/// arrivals in exchange order — the PR-4 ordering, unchanged.
template <typename Notify>
class FrontierStepper {
 public:
  explicit FrontierStepper(count_t max_send_bytes = 0,
                           comm::ShardPolicy policy = comm::ShardPolicy::kFlat,
                           comm::Backend backend = comm::Backend::kTwoSided)
      : ex_(max_send_bytes, policy, backend) {
    ex_.set_label("graph::FrontierStepper");
  }

  template <typename Nbrs, typename Improves, typename Relax,
            typename MakeNotify, typename Receive>
  void step(sim::Comm& comm, const DistGraph& g,
            const std::vector<lid_t>& frontier, std::vector<lid_t>& next,
            Nbrs&& nbrs, Improves&& improves, Relax&& relax,
            MakeNotify&& make_notify, Receive&& receive) {
    next.clear();
    // Lazily sized, stamp-cleared mask: marked[l] says l was already
    // admitted this level (owned: into next; ghost: into the notify
    // list), so duplicates collapse without a full per-level clear.
    marked_.resize(static_cast<std::size_t>(g.n_total()), 0);
    for (const lid_t l : stamped_) marked_[l] = 0;
    stamped_.clear();
    touched_.clear();
    cand_.clear();

    // Adjacency scan, two phases so the edge traversal can run on the
    // rank's thread pool.
    //
    // Phase A (parallel, read-only): each frontier chunk collects its
    // candidate edges — owned and ghost alike pre-filtered by
    // improves(v, u) against the scan-start state — into per-chunk
    // lists. Nothing is relaxed, so concurrent chunks share only
    // read-only state (improves is a read-only hook by contract).
    //
    // Phase B (serial, chunk order): ghost candidates are replayed
    // through relax in exactly the order the old single interleaved
    // scan visited them. Monotonicity makes the pre-filter exact: a
    // ghost's value only improves during the replay, so an edge whose
    // improves() was false at scan start relaxes to a no-op at replay
    // time too — the touched list, the marks, and hence the wire
    // records are identical to the interleaved scan's, at any thread
    // count including one. Owned candidates concatenate in the same
    // chunk order (owned state never moves during the scan), then
    // relax mid-flight below, unchanged.
    const count_t nf = static_cast<count_t>(frontier.size());
    const count_t nchunks = par::chunk_count(nf);
    if (static_cast<count_t>(scan_owned_.size()) < nchunks) {
      scan_owned_.resize(static_cast<std::size_t>(nchunks));
      scan_ghost_.resize(static_cast<std::size_t>(nchunks));
    }
    const auto scan_chunk = [&](count_t c, count_t lo, count_t hi) {
      auto& owned = scan_owned_[static_cast<std::size_t>(c)];
      auto& ghost = scan_ghost_[static_cast<std::size_t>(c)];
      owned.clear();
      ghost.clear();
      for (count_t i = lo; i < hi; ++i) {
        const lid_t v = frontier[static_cast<std::size_t>(i)];
        for (const lid_t u : nbrs(v)) {
          if (!improves(v, u)) continue;
          (g.is_owned(u) ? owned : ghost).push_back({v, u});
        }
      }
    };
    if (g.out_of_core()) {
      // Out-of-core: nbrs(v) borrows segments, which may issue
      // substrate calls (remote backing) — those stay on the rank
      // thread. Same chunk decomposition, so phase B's replay order
      // (and hence marks and wire records) is unchanged.
      for (count_t c = 0; c < nchunks; ++c)
        scan_chunk(c, c * par::kChunkGrain,
                   std::min(nf, (c + 1) * par::kChunkGrain));
    } else {
      par::for_chunks(nf, scan_chunk);
    }
    for (count_t c = 0; c < nchunks; ++c) {
      for (const auto& [v, u] : scan_ghost_[static_cast<std::size_t>(c)])
        if (relax(v, u) && !marked_[u]) {
          marked_[u] = 1;
          stamped_.push_back(u);
          touched_.push_back(u);
        }
      const auto& owned = scan_owned_[static_cast<std::size_t>(c)];
      cand_.insert(cand_.end(), owned.begin(), owned.end());
    }
    buckets_.begin(comm.size());
    for (const lid_t l : touched_) buckets_.count(g.owner_of(l));
    buckets_.commit();
    for (const lid_t l : touched_)
      buckets_.push(g.owner_of(l), make_notify(l));
    ex_.start_inplace(comm, buckets_);

    // Mid-flight: relax the owned candidates while the notifications
    // travel — first improvement admits the vertex, so the surviving
    // order equals the single interleaved scan's.
    for (const auto& [v, u] : cand_)
      if (relax(v, u) && !marked_[u]) {
        marked_[u] = 1;
        stamped_.push_back(u);
        next.push_back(u);
      }
    const std::span<const Notify> arrivals = ex_.finish<Notify>(comm);
    for (const Notify& n : arrivals) {
      const lid_t l = receive(n);
      if (l == kInvalidLid) continue;
      XTRA_ASSERT(g.is_owned(l));
      if (!marked_[l]) {
        marked_[l] = 1;
        stamped_.push_back(l);
        next.push_back(l);
      }
    }
  }

  /// The wire engine, for stats readout and knob changes.
  comm::Exchanger& exchanger() { return ex_; }
  const comm::Exchanger& exchanger() const { return ex_; }

 private:
  comm::Exchanger ex_;
  comm::DestBuckets<Notify> buckets_;
  std::vector<std::pair<lid_t, lid_t>> cand_;  ///< owned candidate edges
  std::vector<lid_t> touched_;                 ///< ghosts to notify
  std::vector<std::uint8_t> marked_;           ///< admitted-this-level mask
  std::vector<lid_t> stamped_;                 ///< marked_ entries to clear
  /// Per-chunk phase-A scratch (persistent across levels).
  std::vector<std::vector<std::pair<lid_t, lid_t>>> scan_owned_;
  std::vector<std::vector<std::pair<lid_t, lid_t>>> scan_ghost_;
};

/// A frontier entry in a batched multi-source traversal: the dense
/// query-slot id plus the local vertex it activates.
struct SlotVertex {
  count_t slot;
  lid_t v;
};

/// Wire record of the multi-source step: the caller's Notify tagged
/// with the slot it belongs to, so N concurrent traversals share one
/// exchange per level.
template <typename Notify>
struct SlotNotify {
  count_t slot;
  Notify payload;
};

/// The batched multi-source sibling of FrontierStepper: N independent
/// traversals (one per dense slot id in [0, num_slots)) advance one
/// level in a single adjacency sweep and a single exchange. Slots
/// never interact — the dedup mask and every hook are keyed on
/// (slot, vertex) — so slot s's marks, next-frontier order, and wire
/// records are exactly what a lone FrontierStepper would produce for
/// that source. What changes is only the amortization: one exchange
/// and one termination collective per level regardless of N, which is
/// the whole point (harmonic centrality's per-source loop, the serve
/// scheduler's packed supersteps).
///
/// Hook contract per step(comm, g, num_slots, frontier, next, ...):
/// identical to FrontierStepper's, with a leading slot argument on
/// every hook — nbrs(slot, v), improves(slot, v, u), relax(slot, v, u),
/// make_notify(slot, ghost), receive(slot, notify) -> owned lid or
/// kInvalidLid. The phase A/B split, the mid-flight owned relaxation,
/// and the arrivals-after-drain ordering are the single-source
/// protocol, unchanged.
template <typename Notify>
class MultiSourceStepper {
 public:
  explicit MultiSourceStepper(count_t max_send_bytes = 0,
                              comm::ShardPolicy policy = comm::ShardPolicy::kFlat,
                              comm::Backend backend = comm::Backend::kTwoSided)
      : ex_(max_send_bytes, policy, backend) {
    ex_.set_label("graph::MultiSourceStepper");
  }

  template <typename Nbrs, typename Improves, typename Relax,
            typename MakeNotify, typename Receive>
  void step(sim::Comm& comm, const DistGraph& g, count_t num_slots,
            const std::vector<SlotVertex>& frontier,
            std::vector<SlotVertex>& next, Nbrs&& nbrs, Improves&& improves,
            Relax&& relax, MakeNotify&& make_notify, Receive&& receive) {
    next.clear();
    scanned_edges_ = 0;
    const std::size_t stride = static_cast<std::size_t>(g.n_total());
    const auto cell = [stride](count_t slot, lid_t l) {
      return static_cast<std::size_t>(slot) * stride +
             static_cast<std::size_t>(l);
    };
    // Stamp-cleared (slot, vertex) admission mask — the per-lid mask
    // of the single-source stepper, one plane per slot.
    const std::size_t cells = static_cast<std::size_t>(num_slots) * stride;
    if (marked_.size() < cells) marked_.resize(cells, 0);
    for (const std::size_t c : stamped_) marked_[c] = 0;
    stamped_.clear();
    touched_.clear();
    cand_.clear();

    // Phase A (parallel, read-only): per-chunk candidate collection,
    // pre-filtered by improves() against the scan-start state. Each
    // chunk also counts the neighbor entries it visits — the serve
    // scheduler's compute billing input, a pure count and therefore
    // identical at any thread width.
    const count_t nf = static_cast<count_t>(frontier.size());
    const count_t nchunks = par::chunk_count(nf);
    if (static_cast<count_t>(scan_owned_.size()) < nchunks) {
      scan_owned_.resize(static_cast<std::size_t>(nchunks));
      scan_ghost_.resize(static_cast<std::size_t>(nchunks));
    }
    scan_edges_.assign(static_cast<std::size_t>(nchunks), 0);
    const auto scan_chunk = [&](count_t c, count_t lo, count_t hi) {
      auto& owned = scan_owned_[static_cast<std::size_t>(c)];
      auto& ghost = scan_ghost_[static_cast<std::size_t>(c)];
      count_t edges = 0;
      owned.clear();
      ghost.clear();
      for (count_t i = lo; i < hi; ++i) {
        const SlotVertex e = frontier[static_cast<std::size_t>(i)];
        for (const lid_t u : nbrs(e.slot, e.v)) {
          ++edges;
          if (!improves(e.slot, e.v, u)) continue;
          (g.is_owned(u) ? owned : ghost).push_back({e.slot, e.v, u});
        }
      }
      scan_edges_[static_cast<std::size_t>(c)] = edges;
    };
    if (g.out_of_core()) {
      // Segment borrows may issue substrate calls: stay on the rank
      // thread, same chunk decomposition (replay order unchanged).
      for (count_t c = 0; c < nchunks; ++c)
        scan_chunk(c, c * par::kChunkGrain,
                   std::min(nf, (c + 1) * par::kChunkGrain));
    } else {
      par::for_chunks(nf, scan_chunk);
    }
    // Phase B (serial, chunk order): ghost replay + owned concat, the
    // single-source ordering per slot.
    for (count_t c = 0; c < nchunks; ++c) {
      scanned_edges_ += scan_edges_[static_cast<std::size_t>(c)];
      for (const Cand& cd : scan_ghost_[static_cast<std::size_t>(c)])
        if (relax(cd.slot, cd.v, cd.u) && !marked_[cell(cd.slot, cd.u)]) {
          marked_[cell(cd.slot, cd.u)] = 1;
          stamped_.push_back(cell(cd.slot, cd.u));
          touched_.push_back({cd.slot, cd.u});
        }
      const auto& owned = scan_owned_[static_cast<std::size_t>(c)];
      cand_.insert(cand_.end(), owned.begin(), owned.end());
    }
    buckets_.begin(comm.size());
    for (const SlotVertex& t : touched_) buckets_.count(g.owner_of(t.v));
    buckets_.commit();
    for (const SlotVertex& t : touched_)
      buckets_.push(g.owner_of(t.v),
                    SlotNotify<Notify>{t.slot, make_notify(t.slot, t.v)});
    ex_.start_inplace(comm, buckets_);

    // Mid-flight owned relaxation while the notifications travel.
    for (const Cand& cd : cand_)
      if (relax(cd.slot, cd.v, cd.u) && !marked_[cell(cd.slot, cd.u)]) {
        marked_[cell(cd.slot, cd.u)] = 1;
        stamped_.push_back(cell(cd.slot, cd.u));
        next.push_back({cd.slot, cd.u});
      }
    const std::span<const SlotNotify<Notify>> arrivals =
        ex_.finish<SlotNotify<Notify>>(comm);
    for (const SlotNotify<Notify>& n : arrivals) {
      const lid_t l = receive(n.slot, n.payload);
      if (l == kInvalidLid) continue;
      XTRA_ASSERT(g.is_owned(l));
      if (!marked_[cell(n.slot, l)]) {
        marked_[cell(n.slot, l)] = 1;
        stamped_.push_back(cell(n.slot, l));
        next.push_back({n.slot, l});
      }
    }
  }

  /// Neighbor entries visited by the last step(), summed over chunks —
  /// deterministic at any thread width (a pure count in chunk order).
  count_t scanned_edges() const { return scanned_edges_; }

  /// The wire engine, for stats readout and knob changes.
  comm::Exchanger& exchanger() { return ex_; }
  const comm::Exchanger& exchanger() const { return ex_; }

 private:
  struct Cand {
    count_t slot;
    lid_t v;
    lid_t u;
  };

  comm::Exchanger ex_;
  comm::DestBuckets<SlotNotify<Notify>> buckets_;
  std::vector<Cand> cand_;             ///< owned candidate edges
  std::vector<SlotVertex> touched_;    ///< (slot, ghost) pairs to notify
  std::vector<std::uint8_t> marked_;   ///< (slot, lid) admission mask
  std::vector<std::size_t> stamped_;   ///< marked_ cells to clear
  count_t scanned_edges_ = 0;
  /// Per-chunk phase-A scratch (persistent across levels).
  std::vector<std::vector<Cand>> scan_owned_;
  std::vector<std::vector<Cand>> scan_ghost_;
  std::vector<count_t> scan_edges_;
};

}  // namespace xtra::graph
