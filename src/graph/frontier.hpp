// Shared overlapped frontier-expansion step for level-synchronous
// BFS-style kernels (graph::bfs_levels, SCC's masked BFS).
//
// One superstep of the frontier protocol, overlapped: a single
// adjacency scan marks ghost neighbors and stages the owner
// notifications (so the exchange starts as early as possible) while
// merely *collecting* the owned candidates; the candidate marking and
// next-frontier compaction run while the notifications are on the
// wire, and the arrivals are applied after the drain. The marks and
// the next-frontier order are identical to a single interleaved scan
// — ghost and owned neighbor sets are disjoint, and first-hit-wins
// compaction preserves traversal order — so callers get the overlap
// for free without a second edge traversal.
//
// The invariant that makes the overlap safe lives here, once: the
// DestBuckets' staging is stable from commit() until the next
// begin(), so the exchange may slice it in place (start_inplace), and
// only one exchange is in flight across the two passes.
#pragma once

#include <span>
#include <vector>

#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "util/assert.hpp"

namespace xtra::graph {

/// Collective: expand `frontier` by one level. nbrs(v) yields the
/// neighbor span to follow; already_marked(u) is the read-only
/// visited-or-ineligible test; try_mark(u) returns true iff u was
/// unvisited-and-eligible and is now marked (called at most once per
/// newly reached vertex: ghosts during the scan, owned candidates
/// mid-flight, arrivals on the owner). Newly reached owned vertices
/// land in `next` (which is cleared); buckets/notify are caller-owned
/// scratch reused across levels.
template <typename Nbrs, typename Marked, typename TryMark>
void expand_frontier_overlapped(sim::Comm& comm, const DistGraph& g,
                                comm::Exchanger& ex,
                                comm::DestBuckets<gid_t>& buckets,
                                std::vector<gid_t>& notify,
                                const std::vector<lid_t>& frontier,
                                Nbrs&& nbrs, Marked&& already_marked,
                                TryMark&& try_mark,
                                std::vector<lid_t>& next) {
  next.clear();
  buckets.begin(comm.size());
  notify.clear();
  // Single adjacency scan: ghost neighbors are marked and staged
  // immediately (they become the wire notifications), owned neighbors
  // are deferred — pre-filtered by the read-only test but collected
  // unmarked into `next`, so the marking work happens mid-flight
  // instead of before the exchange starts and `next` never holds
  // long-visited vertices.
  for (const lid_t v : frontier)
    for (const lid_t u : nbrs(v)) {
      if (g.is_owned(u)) {
        if (!already_marked(u))
          next.push_back(u);  // candidate; marked (and deduped) below
      } else if (try_mark(u)) {
        notify.push_back(g.gid_of(u));
        buckets.count(g.owner_of(u));
      }
    }
  buckets.commit();
  for (const gid_t gid : notify) buckets.push(g.owner_of_gid(gid), gid);
  ex.start_inplace(comm, buckets);
  // Mid-flight: mark the owned candidates while the notifications
  // travel, compacting in place — first hit wins, so the surviving
  // order equals the single interleaved scan's.
  std::size_t w = 0;
  for (const lid_t u : next)
    if (try_mark(u)) next[w++] = u;
  next.resize(w);
  const std::span<const gid_t> arrivals = ex.finish<gid_t>(comm);
  for (const gid_t gid : arrivals) {
    const lid_t l = g.lid_of(gid);
    XTRA_ASSERT(l != kInvalidLid && g.is_owned(l));
    if (try_mark(l)) next.push_back(l);
  }
}

}  // namespace xtra::graph
