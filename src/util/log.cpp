#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xtra {

namespace {

LogLevel initial_threshold() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read-once startup probe
  const char* env = std::getenv("XTRA_LOG");
  if (!env) return LogLevel::kWarn;
  if (!std::strcmp(env, "debug")) return LogLevel::kDebug;
  if (!std::strcmp(env, "info")) return LogLevel::kInfo;
  if (!std::strcmp(env, "error")) return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> level{static_cast<int>(initial_threshold())};
  return level;
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[xtra %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace xtra
