// Wall-clock timing helpers used by benches and the partitioner's
// per-phase instrumentation.
#pragma once

#include <chrono>

namespace xtra {

/// Monotonic stopwatch. Construction starts it.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace xtra
