// Fundamental scalar types shared across the library.
#pragma once

#include <cstdint>

namespace xtra {

/// Global vertex identifier (valid range [0, n_global)).
using gid_t = std::uint64_t;
/// Local vertex index within one rank (owned vertices first, then ghosts).
using lid_t = std::uint64_t;
/// Part (partition) label. kNoPart marks an unassigned vertex.
using part_t = std::int32_t;
/// Signed 64-bit count used for sizes, offsets, and deltas.
using count_t = std::int64_t;

inline constexpr part_t kNoPart = -1;
inline constexpr lid_t kInvalidLid = ~lid_t(0);

}  // namespace xtra
