// Internal invariant checking for the XtraPuLP reproduction.
//
// XTRA_ASSERT is active in all build types (the algorithms here are
// subtle enough that silent corruption is worse than the ~negligible
// branch cost); XTRA_DEBUG_ASSERT compiles away outside debug builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace xtra {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "XTRA_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " -- " : "", msg ? msg : "");
  std::abort();
}

}  // namespace xtra

#define XTRA_ASSERT(expr)                                     \
  do {                                                        \
    if (!(expr)) [[unlikely]]                                 \
      ::xtra::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define XTRA_ASSERT_MSG(expr, msg)                         \
  do {                                                     \
    if (!(expr)) [[unlikely]]                              \
      ::xtra::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define XTRA_DEBUG_ASSERT(expr) ((void)0)
#else
#define XTRA_DEBUG_ASSERT(expr) XTRA_ASSERT(expr)
#endif
