// Minimal leveled logging. Benches print their tables directly; this is
// for diagnostics, rate-limited to avoid interleaving from rank threads.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace xtra {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
/// Controlled by the XTRA_LOG env var (debug|info|warn|error).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_threshold()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, os.str());
}

#define XTRA_LOG_INFO(...) ::xtra::log(::xtra::LogLevel::kInfo, __VA_ARGS__)
#define XTRA_LOG_WARN(...) ::xtra::log(::xtra::LogLevel::kWarn, __VA_ARGS__)
#define XTRA_LOG_DEBUG(...) ::xtra::log(::xtra::LogLevel::kDebug, __VA_ARGS__)

}  // namespace xtra
