// Exclusive prefix sums, the workhorse of every bucketed exchange
// (Algorithm 3's sendOffsets <- prefixSums(sendCounts)).
#pragma once

#include <vector>

#include "util/assert.hpp"

namespace xtra {

/// Returns offsets where offsets[i] = sum of counts[0..i), with one
/// extra trailing element equal to the total. offsets.size() ==
/// counts.size() + 1.
template <typename T>
std::vector<T> exclusive_prefix_sum(const std::vector<T>& counts) {
  std::vector<T> offsets(counts.size() + 1);
  T running = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = running;
    running += counts[i];
  }
  offsets[counts.size()] = running;
  return offsets;
}

/// In-place exclusive scan: v[i] becomes sum of the original v[0..i).
/// Returns the grand total.
template <typename T>
T exclusive_scan_inplace(std::vector<T>& v) {
  T running = 0;
  for (auto& x : v) {
    T next = running + x;
    x = running;
    running = next;
  }
  return running;
}

}  // namespace xtra
