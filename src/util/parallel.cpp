#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/assert.hpp"

namespace xtra::par {

namespace {

thread_local int tl_threads = 1;
thread_local int tl_slot = 0;
thread_local bool tl_in_region = false;

/// The per-rank worker pool. Workers are spawned lazily on the first
/// dispatch that wants them and park on a condition variable between
/// jobs; the epoch counter is the job handoff. All chunk-body side
/// effects are published to the caller through the done_/cv_done_
/// rendezvous (mutex acquire/release), so readers after dispatch()
/// returns see every write a worker made — the happens-before edge
/// ThreadSanitizer checks for.
class Pool {
 public:
  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_) w.join();
  }

  /// Run fn(chunk, slot) over [0, nchunks) on the caller (slot 0) plus
  /// nthreads-1 workers (slots 1..). Blocks until all chunks ran;
  /// rethrows the first chunk exception.
  void run(int nthreads, count_t nchunks,
           const std::function<void(count_t, int)>& fn) {
    const int helpers = nthreads - 1;
    ensure_workers(helpers);
    {
      std::lock_guard<std::mutex> lock(m_);
      fn_ = &fn;
      nchunks_ = nchunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      failed_.store(false, std::memory_order_relaxed);
      error_ = nullptr;
      active_ = helpers;
      done_ = 0;
      ++epoch_;
    }
    cv_start_.notify_all();

    work(fn, 0);

    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [&] { return done_ == active_; });
    fn_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void ensure_workers(int helpers) {
    while (static_cast<int>(workers_.size()) < helpers) {
      const int slot = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, slot] { worker_main(slot); });
    }
  }

  /// Chunk loop shared by the caller and the workers: dynamic chunk
  /// claiming is safe under the determinism contract because chunk
  /// results land in per-chunk slots — the assignment never shows.
  void work(const std::function<void(count_t, int)>& fn, int slot) {
    tl_slot = slot;
    tl_in_region = true;
    count_t c;
    while (!failed_.load(std::memory_order_relaxed) &&
           (c = next_chunk_.fetch_add(1, std::memory_order_relaxed)) <
               nchunks_) {
      try {
        fn(c, slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(m_);
        if (!error_) error_ = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    tl_in_region = false;
    tl_slot = 0;
  }

  void worker_main(int slot) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(count_t, int)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        if (slot > active_) continue;  // not enlisted for this job
        fn = fn_;
      }
      work(*fn, slot);
      {
        std::lock_guard<std::mutex> lock(m_);
        ++done_;
      }
      cv_done_.notify_one();
    }
  }

  std::mutex m_;
  std::condition_variable cv_start_, cv_done_;
  std::vector<std::thread> workers_;

  const std::function<void(count_t, int)>* fn_ = nullptr;
  count_t nchunks_ = 0;
  std::atomic<count_t> next_chunk_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  int active_ = 0;  ///< workers enlisted for the current job
  int done_ = 0;    ///< workers finished with the current job
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

/// One pool per rank thread, started on first parallel use, torn down
/// when the rank thread exits (sim::run_world joins its ranks, so
/// worlds never leak pools).
thread_local std::unique_ptr<Pool> tl_pool;

}  // namespace

int num_threads() { return tl_threads; }
int current_slot() { return tl_slot; }
bool in_parallel_region() { return tl_in_region; }

ThreadScope::ThreadScope(int n) : prev_(tl_threads) {
  XTRA_ASSERT_MSG(!tl_in_region,
                  "ThreadScope may not open inside a parallel region");
  tl_threads = std::clamp(n, 1, kMaxThreads);
}

ThreadScope::~ThreadScope() { tl_threads = prev_; }

namespace detail {

void dispatch(count_t nchunks, const std::function<void(count_t, int)>& fn) {
  if (tl_in_region)
    throw std::logic_error(
        "par::for_chunks: nested parallel regions are not supported");
  const count_t want = std::min<count_t>(nchunks, tl_threads);
  if (want <= 1) {
    // Serial execution of the same chunk layout: byte-identical to any
    // thread count by the determinism contract.
    tl_in_region = true;
    try {
      for (count_t c = 0; c < nchunks; ++c) fn(c, 0);
    } catch (...) {
      tl_in_region = false;
      throw;
    }
    tl_in_region = false;
    return;
  }
  if (!tl_pool) tl_pool = std::make_unique<Pool>();
  tl_pool->run(static_cast<int>(want), nchunks, fn);
}

}  // namespace detail

}  // namespace xtra::par
