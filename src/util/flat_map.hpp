// Open-addressing hash map from global vertex id to local index.
//
// The paper (III-A): "Each vertex's global identifier is mapped to a
// task-specific local one using a hash map. Local to global translation
// uses values stored in a flat array."  std::unordered_map's node
// allocation is a known scalability sink at billions of lookups, so we
// use linear-probing open addressing with splitmix64 mixing, matching
// what the real XtraPuLP implementation does.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace xtra {

/// Hash map gid -> lid specialized for insert-once / lookup-many usage.
/// Not thread-safe for concurrent writes.
class GidToLidMap {
 public:
  GidToLidMap() { rehash(kMinCapacity); }

  /// Reserve space for at least n keys without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * kMaxLoadDen < n * kMaxLoadNum + want) want <<= 1;
    if (want > capacity_) rehash(want);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Insert key->value; returns false (and leaves the map unchanged)
  /// if the key is already present.
  bool insert(gid_t key, lid_t value) {
    if ((size_ + 1) * kMaxLoadDen > capacity_ * kMaxLoadNum)
      rehash(capacity_ * 2);
    std::size_t slot = probe_start(key);
    while (slots_[slot].lid != kInvalidLid) {
      if (slots_[slot].gid == key) return false;
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = {key, value};
    ++size_;
    return true;
  }

  /// Returns the mapped lid or kInvalidLid if absent.
  lid_t find(gid_t key) const {
    std::size_t slot = probe_start(key);
    while (slots_[slot].lid != kInvalidLid) {
      if (slots_[slot].gid == key) return slots_[slot].lid;
      slot = (slot + 1) & mask_;
    }
    return kInvalidLid;
  }

  bool contains(gid_t key) const { return find(key) != kInvalidLid; }

  void clear() {
    for (auto& s : slots_) s = Slot{};
    size_ = 0;
  }

 private:
  struct Slot {
    gid_t gid = 0;
    lid_t lid = kInvalidLid;  // kInvalidLid marks an empty slot
  };

  static constexpr std::size_t kMinCapacity = 16;
  // Max load factor 7/10.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 10;

  std::size_t probe_start(gid_t key) const {
    return static_cast<std::size_t>(splitmix64(key)) & mask_;
  }

  void rehash(std::size_t new_capacity) {
    XTRA_ASSERT((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;
    size_ = 0;
    for (const Slot& s : old)
      if (s.lid != kInvalidLid) insert(s.gid, s.lid);
  }

  std::vector<Slot> slots_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace xtra
