// Deterministic random number generation.
//
// All randomness in the library flows through Rng (xoshiro256**) seeded
// via SplitMix64, so every experiment is reproducible bit-for-bit.
// Each simulated rank derives an independent stream from (seed, rank).
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace xtra {

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** PRNG. Small, fast, high quality; satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) { reseed(seed); }

  /// Derive an independent stream for (seed, stream) pairs, e.g. one
  /// stream per simulated MPI rank.
  Rng(std::uint64_t seed, std::uint64_t stream) {
    reseed(splitmix64(seed) ^ splitmix64(stream * 0x9e3779b97f4a7c15ULL + 1));
  }

  void reseed(std::uint64_t seed) {
    for (auto& w : s_) {
      seed = splitmix64(seed);
      w = seed;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t(0); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    XTRA_DEBUG_ASSERT(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Stateless uniform hash of a 64-bit key to [0, buckets). Used for the
/// "random" vertex distribution so any rank can compute ownership
/// without communication.
inline std::uint64_t hash_to_bucket(std::uint64_t key, std::uint64_t salt,
                                    std::uint64_t buckets) {
  XTRA_DEBUG_ASSERT(buckets > 0);
  const std::uint64_t h = splitmix64(key ^ splitmix64(salt));
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(h) * buckets) >> 64);
}

}  // namespace xtra
