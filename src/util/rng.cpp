#include "util/rng.hpp"

// Header-only; this TU anchors the library target.
