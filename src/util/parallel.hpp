// Deterministic intra-rank thread parallelism (the "+X" of MPI+X).
//
// Every simulated rank is a thread (sim::run_world), so a rank's
// compute pool is a *thread_local* lazily-started set of workers: the
// first par::for_chunks call with num_threads() > 1 spawns them, and
// they die with the rank thread. Pool workers run only plain compute —
// they must never touch sim::Comm (collectives are rank-granular; the
// comm layer stays exactly as wide as the rank count).
//
// The determinism contract, used by every threaded layer above
// (engine sweeps, partitioner phases, SpMV, generators):
//
//  * Work over [0, n) is cut into chunks of a FIXED grain
//    (kChunkGrain), so the chunk layout depends only on n — never on
//    the thread count.
//  * Chunks are handed to threads dynamically (any order, any
//    assignment), so a chunk's side effects must land in per-chunk or
//    per-vertex slots — never in shared accumulators.
//  * Order-sensitive reductions (floating-point sums, merged record
//    streams) combine the per-chunk partials in chunk-index order
//    after the join (ordered_sum, comm::ShardedBuckets).
//
// Under that discipline the result of a threaded region is a pure
// function of the chunk layout, so {1, T} threads produce
// byte-identical outputs for every T — the single path is used even at
// num_threads() == 1 (the chunks just run inline on the caller).
//
// Error contract: exceptions thrown by chunk bodies are rethrown on
// the calling thread (first one wins; remaining chunks are abandoned).
// Nested for_chunks calls — from inside a chunk body — throw
// std::logic_error: the pool is not reentrant, and silently
// serializing would hide the layering bug.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "util/types.hpp"

namespace xtra::par {

/// Hard cap on per-rank pool width (slot arrays in contexts and
/// per-slot scratch size against it).
inline constexpr int kMaxThreads = 32;

/// Items per chunk. Fixed — never derived from the thread count — so
/// chunk boundaries (and therefore every chunk-ordered reduction) are
/// identical for any number of threads.
inline constexpr count_t kChunkGrain = 1024;

/// Configured thread count of the calling rank (>= 1). Set with
/// ThreadScope; defaults to 1.
int num_threads();

/// Slot of the executing thread inside a for_chunks region: 0 for the
/// calling rank's own thread, 1..t-1 for pool workers. 0 outside any
/// region. Index for per-slot scratch.
int current_slot();

/// True while the calling thread is executing a chunk body (used to
/// reject nested parallel regions).
bool in_parallel_region();

/// RAII thread-count override for the calling rank. The engine and the
/// partitioner open one around a run from Config/Params::num_threads;
/// benches and examples open one from XTRA_THREADS.
class ThreadScope {
 public:
  explicit ThreadScope(int n);
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int prev_;
};

inline count_t chunk_count(count_t n) {
  return (n + kChunkGrain - 1) / kChunkGrain;
}

namespace detail {

/// Type-erased dispatch: run fn(chunk, slot) for every chunk index in
/// [0, nchunks), on the caller plus up to num_threads()-1 pool
/// workers. Blocks until every chunk ran (or one threw).
void dispatch(count_t nchunks,
              const std::function<void(count_t, int)>& fn);

}  // namespace detail

/// Chunked parallel for over [0, n): body(chunk, lo, hi) for each
/// chunk [lo, hi). See the file header for the determinism contract.
template <typename Body>
void for_chunks(count_t n, Body&& body) {
  const count_t nchunks = chunk_count(n);
  if (nchunks == 0) return;
  detail::dispatch(nchunks, [&](count_t c, int /*slot*/) {
    const count_t lo = c * kChunkGrain;
    const count_t hi = std::min(n, lo + kChunkGrain);
    body(c, lo, hi);
  });
}

/// Deterministic chunked reduction: partial(chunk, lo, hi) returns the
/// chunk's contribution; the partials are summed in chunk-index order,
/// so the result is bit-identical for any thread count (and equals the
/// chunked serial sum — NOT the unchunked left-to-right sum).
template <typename F>
double ordered_sum(count_t n, F&& partial) {
  const count_t nchunks = chunk_count(n);
  if (nchunks == 0) return 0.0;
  std::vector<double> partials(static_cast<std::size_t>(nchunks), 0.0);
  for_chunks(n, [&](count_t c, count_t lo, count_t hi) {
    partials[static_cast<std::size_t>(c)] = partial(c, lo, hi);
  });
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

}  // namespace xtra::par
