#include "spmv/spmv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "comm/dest_buckets.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace xtra::spmv {

namespace {

/// Largest divisor of p that is <= sqrt(p): the squarest pr x pc grid.
int grid_rows_for(int p) {
  int best = 1;
  for (int r = 1; r * r <= p; ++r)
    if (p % r == 0) best = r;
  return best;
}

/// Dense index of a gid within the sorted list of gids owned by one
/// rank under `owners`. Precomputed as a global prefix per rank.
struct OwnedIndexer {
  // For each gid: its index among its owner's entries.
  std::vector<count_t> index_in_owner;
  std::vector<count_t> owned_count;  // per rank

  OwnedIndexer(const std::vector<int>& owners, int nranks) {
    owned_count.assign(static_cast<std::size_t>(nranks), 0);
    index_in_owner.resize(owners.size());
    for (std::size_t v = 0; v < owners.size(); ++v)
      index_in_owner[v] = owned_count[static_cast<std::size_t>(owners[v])]++;
  }
};

}  // namespace

std::vector<int> owners_from_parts(const std::vector<part_t>& parts) {
  std::vector<int> owners(parts.size());
  for (std::size_t v = 0; v < parts.size(); ++v)
    owners[v] = static_cast<int>(parts[v]);
  return owners;
}

DistSpmv::DistSpmv(sim::Comm& comm, const graph::EdgeList& el,
                   const std::vector<int>& owners, Layout layout,
                   comm::ShardPolicy policy) {
  ex_.set_shard_policy(policy);
  ex_.set_label("spmv::DistSpmv");
  XTRA_ASSERT(owners.size() == el.n);
  XTRA_ASSERT_MSG(!el.directed, "SpMV expects an undirected edge list");
  const int p = comm.size();
  const int me = comm.rank();
  for (const int o : owners) XTRA_ASSERT(o >= 0 && o < p);

  if (layout == Layout::kTwoD) {
    pr_ = grid_rows_for(p);
    pc_ = p / pr_;
  } else {
    pr_ = 1;
    pc_ = p;
  }
  // Boman et al. [6] fold: entry (u,v) -> grid(row(owners[u]),
  // col(owners[v])); under 1D (pr=1) this degenerates to owners[u].
  auto entry_rank = [&](gid_t u, gid_t v) {
    if (layout == Layout::kOneD) return owners[u];
    const int qr = owners[u] % pr_;
    const int qc = owners[v] / pr_;
    return qr + pr_ * qc;
  };

  // --- Collect my entries (symmetric adjacency + unit diagonal). ---
  std::vector<std::pair<gid_t, gid_t>> mine;
  for (const graph::Edge& e : el.edges) {
    if (e.u == e.v) continue;
    if (entry_rank(e.u, e.v) == me) mine.push_back({e.u, e.v});
    if (entry_rank(e.v, e.u) == me) mine.push_back({e.v, e.u});
  }
  for (gid_t v = 0; v < el.n; ++v)
    if (entry_rank(v, v) == me) mine.push_back({v, v});
  std::sort(mine.begin(), mine.end());
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());

  // --- Compact row and column id spaces. ---
  std::vector<gid_t> rows, cols;
  rows.reserve(mine.size());
  cols.reserve(mine.size());
  for (const auto& [u, v] : mine) {
    rows.push_back(u);
    cols.push_back(v);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  n_rows_ = static_cast<count_t>(rows.size());
  n_cols_ = static_cast<count_t>(cols.size());
  auto row_of = [&rows](gid_t u) {
    return static_cast<count_t>(
        std::lower_bound(rows.begin(), rows.end(), u) - rows.begin());
  };
  auto col_of = [&cols](gid_t v) {
    return static_cast<count_t>(
        std::lower_bound(cols.begin(), cols.end(), v) - cols.begin());
  };

  // CSR over local rows ("mine" is sorted by row already).
  row_offsets_.assign(static_cast<std::size_t>(n_rows_) + 1, 0);
  col_index_.resize(mine.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    ++row_offsets_[static_cast<std::size_t>(row_of(mine[i].first)) + 1];
    col_index_[i] = col_of(mine[i].second);
  }
  for (count_t r = 0; r < n_rows_; ++r)
    row_offsets_[static_cast<std::size_t>(r) + 1] +=
        row_offsets_[static_cast<std::size_t>(r)];

  const OwnedIndexer idx(owners, p);
  n_own_ = idx.owned_count[static_cast<std::size_t>(me)];

  // --- x import plan: self-owned columns copy locally; every remote
  // column's value is requested from its owner (once, at setup). ---
  {
    comm::DestBuckets<gid_t> requests;
    requests.begin(p);
    for (const gid_t v : cols)
      if (owners[v] != me) requests.count(owners[v]);
    requests.commit();
    x_recv_slot_.resize(static_cast<std::size_t>(requests.total()));
    for (const gid_t v : cols) {
      if (owners[v] == me) {
        x_self_src_.push_back(idx.index_in_owner[v]);
        x_self_dst_.push_back(col_of(v));
      } else {
        const count_t slot = requests.push(owners[v], v);
        x_recv_slot_[static_cast<std::size_t>(slot)] = col_of(v);
      }
    }
    const std::span<const gid_t> incoming =
        ex_.exchange(comm, requests, &x_send_counts_);
    x_send_index_.resize(incoming.size());
    for (std::size_t i = 0; i < incoming.size(); ++i) {
      XTRA_ASSERT(owners[incoming[i]] == me);
      x_send_index_[i] = idx.index_in_owner[incoming[i]];
    }
  }

  // --- Overlap split: interior rows read only self-owned columns, so
  // they multiply while the remote x import is in flight. ---
  {
    std::vector<std::uint8_t> col_remote(static_cast<std::size_t>(n_cols_), 0);
    for (std::size_t i = 0; i < cols.size(); ++i)
      if (owners[cols[i]] != me) col_remote[i] = 1;
    for (count_t r = 0; r < n_rows_; ++r) {
      bool remote = false;
      for (count_t i = row_offsets_[static_cast<std::size_t>(r)];
           i < row_offsets_[static_cast<std::size_t>(r) + 1]; ++i)
        if (col_remote[static_cast<std::size_t>(
                col_index_[static_cast<std::size_t>(i)])]) {
          remote = true;
          break;
        }
      (remote ? rows_boundary_ : rows_interior_).push_back(r);
    }
  }

  // --- y fold plan: announce which rows we hold partials for. ---
  {
    comm::DestBuckets<gid_t> announce;
    announce.begin(p);
    for (const gid_t u : rows) announce.count(owners[u]);
    announce.commit();
    y_send_row_.resize(rows.size());
    for (const gid_t u : rows) {
      const count_t slot = announce.push(owners[u], u);
      y_send_row_[static_cast<std::size_t>(slot)] = row_of(u);
    }
    y_send_counts_ = announce.counts();
    const std::span<const gid_t> incoming = ex_.exchange(comm, announce);
    y_recv_slot_.resize(incoming.size());
    for (std::size_t i = 0; i < incoming.size(); ++i) {
      XTRA_ASSERT(owners[incoming[i]] == me);
      y_recv_slot_[i] = idx.index_in_owner[incoming[i]];
    }
  }
}

SpmvStats DistSpmv::run(sim::Comm& comm, int iters) {
  SpmvStats stats;
  stats.local_nnz = static_cast<count_t>(col_index_.size());
  // Remote x values = imports not owned by this rank; count the
  // locally-copied self columns too (no wire traffic) so the reported
  // import size stays the full gathered column set.
  stats.x_imports =
      static_cast<count_t>(x_recv_slot_.size() + x_self_dst_.size());

  const count_t bytes_before = comm.stats().bytes_sent;
  Timer timer;

  std::vector<double> x(static_cast<std::size_t>(n_own_), 1.0);
  std::vector<double> xcol(static_cast<std::size_t>(n_cols_), 0.0);
  std::vector<double> y_partial(static_cast<std::size_t>(n_rows_), 0.0);
  std::vector<double> y(static_cast<std::size_t>(n_own_), 0.0);
  std::vector<double> xsend(x_send_index_.size());
  std::vector<double> ysend(y_send_row_.size());

  const auto row_mult = [&](count_t r) {
    double sum = 0.0;
    for (count_t i = row_offsets_[static_cast<std::size_t>(r)];
         i < row_offsets_[static_cast<std::size_t>(r) + 1]; ++i)
      sum += xcol[static_cast<std::size_t>(col_index_[static_cast<std::size_t>(i)])];
    y_partial[static_cast<std::size_t>(r)] = sum;
  };
  // Chunked on the ambient par::ThreadScope width (the "+X" threads):
  // rows write disjoint y_partial slots and each row's sum keeps its
  // serial association, so the result is bit-identical at any width.
  const auto mult_rows = [&](const std::vector<count_t>& rows) {
    par::for_chunks(static_cast<count_t>(rows.size()),
                    [&](count_t, count_t lo, count_t hi) {
                      for (count_t i = lo; i < hi; ++i)
                        row_mult(rows[static_cast<std::size_t>(i)]);
                    });
  };

  for (int iter = 0; iter < iters; ++iter) {
    // Expand: owners ship x values to every rank holding a matching
    // remote column. While the import is on the wire, self columns
    // copy in memory and the interior rows (which read nothing
    // remote) multiply — the classic overlap of local SpMV work with
    // the halo import.
    for (std::size_t i = 0; i < x_send_index_.size(); ++i)
      xsend[i] = x[static_cast<std::size_t>(x_send_index_[i])];
    // xsend is untouched until the finish below: in-place, no copy.
    ex_.start_inplace(comm, xsend.data(), x_send_counts_);
    for (std::size_t i = 0; i < x_self_dst_.size(); ++i)
      xcol[static_cast<std::size_t>(x_self_dst_[i])] =
          x[static_cast<std::size_t>(x_self_src_[i])];
    mult_rows(rows_interior_);  // overlaps the in-flight x import
    const std::span<const double> ximp = ex_.finish<double>(comm);
    XTRA_ASSERT(ximp.size() == x_recv_slot_.size());
    for (std::size_t i = 0; i < ximp.size(); ++i)
      xcol[static_cast<std::size_t>(x_recv_slot_[i])] = ximp[i];
    mult_rows(rows_boundary_);

    // Fold: partials travel to the row owner and accumulate.
    for (std::size_t i = 0; i < y_send_row_.size(); ++i)
      ysend[i] = y_partial[static_cast<std::size_t>(y_send_row_[i])];
    const std::span<const double> yimp =
        ex_.exchange(comm, ysend, y_send_counts_);
    XTRA_ASSERT(yimp.size() == y_recv_slot_.size());
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t i = 0; i < yimp.size(); ++i)
      y[static_cast<std::size_t>(y_recv_slot_[i])] += yimp[i];

    // Power-method normalization keeps values bounded across 100
    // iterations (and is itself one small allreduce, as in practice).
    double local_max = 0.0;
    for (const double v : y) local_max = std::max(local_max, std::abs(v));
    const double norm = std::max(comm.allreduce_max(local_max), 1e-300);
    for (std::size_t i = 0; i < y.size(); ++i) x[i] = y[i] / norm;
    stats.checksum = norm;
  }

  stats.seconds = timer.seconds();
  stats.comm_bytes = comm.stats().bytes_sent - bytes_before;
  return stats;
}

}  // namespace xtra::spmv
