// Distributed sparse matrix-vector multiplication (Table III).
//
// The matrix is the graph's symmetric adjacency plus a unit diagonal
// (the structure Epetra would build from these graphs). Two layouts:
//
//  * 1D: matrix row u and vector entries x(u), y(u) live on rank
//    owners[u]. Each SpMV imports the halo x values (the Epetra Import
//    pattern).
//  * 2D: ranks form a pr x pc grid. A 1D map `owners` is folded into
//    the grid with the Boman–Devine–Rajamanickam construction [6]:
//    entry (u,v) is stored at grid(row(owners[u]), col(owners[v]))
//    with row(q) = q mod pr, col(q) = q div pr, so communication for
//    x(v) stays inside one processor column (<= pr peers) and the
//    y-fold inside one processor row (<= pc peers). Locality of the 1D
//    map (e.g. an XtraPuLP partition) shrinks both message sets, which
//    is exactly the 2D-XtraPuLP win the paper reports.
//
// Each run executes `iters` power-method steps y = A x, x = y/||y||_inf
// and reports wall time plus communication volume.
#pragma once

#include <vector>

#include "comm/exchanger.hpp"
#include "graph/edge_list.hpp"
#include "mpisim/comm.hpp"

namespace xtra::spmv {

enum class Layout { kOneD, kTwoD };

struct SpmvStats {
  double seconds = 0.0;
  count_t comm_bytes = 0;      ///< bytes sent by this rank
  count_t local_nnz = 0;       ///< matrix entries stored on this rank
  /// Column values gathered per iteration (the x import list; entries
  /// whose owner is this rank move in memory, not on the wire — the
  /// comm_bytes field has the wire truth).
  count_t x_imports = 0;
  double checksum = 0.0;       ///< ||x||_inf after the final iteration
};

class DistSpmv {
 public:
  /// Collective. `owners[v]` in [0, comm.size()) assigns vector entry
  /// v (and, under 1D, matrix row v) to a rank — derive it from a
  /// partition to measure that partition's SpMV behaviour. The edge
  /// list must be undirected; duplicates merge. `policy` routes the
  /// setup round trips, the per-iteration x import, and the y fold
  /// flat or hierarchically (identical results either way).
  DistSpmv(sim::Comm& comm, const graph::EdgeList& el,
           const std::vector<int>& owners, Layout layout,
           comm::ShardPolicy policy = comm::ShardPolicy::kFlat);

  /// Collective: run `iters` multiply+normalize steps.
  SpmvStats run(sim::Comm& comm, int iters);

  int grid_rows() const { return pr_; }
  int grid_cols() const { return pc_; }

 private:
  struct Entry {
    count_t row;  ///< local row index
    count_t col;  ///< local col index
  };

  int pr_ = 1, pc_ = 1;
  count_t n_own_ = 0;  ///< vector entries owned by this rank

  // Local matrix (all values are 1.0, so entries alone suffice).
  std::vector<count_t> row_offsets_;
  std::vector<count_t> col_index_;
  count_t n_rows_ = 0, n_cols_ = 0;

  // x import plan: owned x values to send (by local x index, grouped
  // per destination), and where arriving values land in the col array.
  // Self-owned columns never touch the exchange: they copy through the
  // x_self_* map while the remote import is in flight.
  std::vector<count_t> x_send_counts_;
  std::vector<count_t> x_send_index_;
  std::vector<count_t> x_recv_slot_;  ///< col-array slot per arrival
  std::vector<count_t> x_self_src_;   ///< owned-x index per self column
  std::vector<count_t> x_self_dst_;   ///< col-array slot per self column

  // Overlap split of the local multiply: interior rows touch only
  // self-owned columns and run while the x import is on the wire;
  // boundary rows wait for the arrivals.
  std::vector<count_t> rows_interior_;
  std::vector<count_t> rows_boundary_;

  // y fold plan: local row partials to send (grouped per owner), and
  // accumulation slots for arriving partials.
  std::vector<count_t> y_send_counts_;
  std::vector<count_t> y_send_row_;
  std::vector<count_t> y_recv_slot_;  ///< owned-x slot per arrival

  /// Persistent wire engine shared by the setup round trips and both
  /// per-iteration exchanges (expand and fold).
  comm::Exchanger ex_;
};

/// Convenience: ranks-from-partition. parts must use exactly
/// comm.size() parts; returned vector is owners for DistSpmv.
std::vector<int> owners_from_parts(const std::vector<part_t>& parts);

}  // namespace xtra::spmv
