// Shared instrumentation for the analytics kernels.
#pragma once

#include "analytics/analytics.hpp"
#include "engine/stats.hpp"
#include "util/timer.hpp"

namespace xtra::analytics::detail {

/// Scoped measurement of wall time and sent bytes into a RunInfo (for
/// the composite wrappers that meter several engine runs plus glue).
class Meter {
 public:
  Meter(sim::Comm& comm, RunInfo& info)
      : comm_(comm), info_(info), start_bytes_(comm.stats().bytes_sent) {}
  ~Meter() {
    info_.seconds = timer_.seconds();
    info_.comm_bytes = comm_.stats().bytes_sent - start_bytes_;
  }
  Meter(const Meter&) = delete;
  Meter& operator=(const Meter&) = delete;

 private:
  sim::Comm& comm_;
  RunInfo& info_;
  count_t start_bytes_;
  Timer timer_;
};

/// The legacy RunInfo triple of an engine run (single-run wrappers).
inline RunInfo to_run_info(const engine::Stats& st) {
  RunInfo info;
  info.seconds = st.seconds;
  info.comm_bytes = st.comm_bytes;
  info.supersteps = st.supersteps;
  return info;
}

}  // namespace xtra::analytics::detail
