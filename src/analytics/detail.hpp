// Shared instrumentation for the analytics kernels.
#pragma once

#include "analytics/analytics.hpp"
#include "util/timer.hpp"

namespace xtra::analytics::detail {

/// Scoped measurement of wall time and sent bytes into a RunInfo.
class Meter {
 public:
  Meter(sim::Comm& comm, RunInfo& info)
      : comm_(comm), info_(info), start_bytes_(comm.stats().bytes_sent) {}
  ~Meter() {
    info_.seconds = timer_.seconds();
    info_.comm_bytes = comm_.stats().bytes_sent - start_bytes_;
  }
  Meter(const Meter&) = delete;
  Meter& operator=(const Meter&) = delete;

 private:
  sim::Comm& comm_;
  RunInfo& info_;
  count_t start_bytes_;
  Timer timer_;
};

}  // namespace xtra::analytics::detail
