#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"

namespace xtra::analytics {

TriangleResult triangle_count(sim::Comm& comm, const graph::DistGraph& g,
                              count_t sample_cap, std::uint64_t seed,
                              const engine::Config& cfg) {
  TriangleCountProgram p;
  p.sample_cap = sample_cap;
  p.seed = seed;
  engine::Config one_shot = cfg;
  one_shot.max_supersteps = 1;  // single query superstep
  const engine::Stats st = engine::run(comm, g, p, one_shot);

  TriangleResult result;
  result.info = detail::to_run_info(st);
  result.triangles = p.triangles;
  result.sampled_centers = p.sampled_centers;
  return result;
}

}  // namespace xtra::analytics
