#include <algorithm>
#include <span>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "comm/coalescing.hpp"
#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "graph/halo.hpp"
#include "util/flat_map.hpp"

namespace xtra::analytics {

namespace {

/// Sparse ghost-label update shipped by the coalesced path: the owner
/// of `gid` re-labeled it. Receivers apply arrivals in order, so
/// batched rounds resolve to last-write-wins (the newest label).
struct LabelUpdate {
  gid_t gid;
  gid_t label;
};

}  // namespace

CommunityResult label_propagation(sim::Comm& comm,
                                  const graph::DistGraph& g, int sweeps,
                                  comm::ShardPolicy policy,
                                  int coalesce_every) {
  CommunityResult result;
  detail::Meter meter(comm, result.info);
  graph::HaloPlan halo(comm, g, policy);

  result.label.resize(g.n_total());
  for (lid_t v = 0; v < g.n_total(); ++v) result.label[v] = g.gid_of(v);
  std::vector<gid_t> prev(result.label);

  // Scratch for majority counting: labels are arbitrary gids, so use a
  // sorted copy of the neighborhood's labels per vertex.
  std::vector<gid_t> nbr_labels;
  // Synchronous update: read prev, write label. Order is therefore
  // free, so each sweep updates the boundary vertices first, ships
  // them (the only labels any peer reads) while the interior computes,
  // and drains the ghost refresh at the end — bit-identical to the
  // all-then-exchange sweep.
  const auto relabel = [&](lid_t v, bool& changed) {
    const auto nbrs = g.neighbors(v);
    if (nbrs.empty()) return;
    nbr_labels.clear();
    for (const lid_t u : nbrs) nbr_labels.push_back(prev[u]);
    std::sort(nbr_labels.begin(), nbr_labels.end());
    // Majority label, ties toward the smaller label (deterministic).
    gid_t best = prev[v];
    std::size_t best_count = 0;
    for (std::size_t i = 0; i < nbr_labels.size();) {
      std::size_t j = i;
      while (j < nbr_labels.size() && nbr_labels[j] == nbr_labels[i]) ++j;
      if (j - i > best_count) {
        best_count = j - i;
        best = nbr_labels[i];
      }
      i = j;
    }
    if (best != result.label[v]) changed = true;
    result.label[v] = best;
  };

  if (coalesce_every <= 0) {
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      bool changed = false;
      halo.overlapped_superstep(comm, result.label,
                                [&](lid_t v) { relabel(v, changed); });
      prev = result.label;
      ++result.info.supersteps;
      if (!comm.allreduce_or(changed)) break;
    }
  } else {
    // Coalesced path: instead of a full halo refresh per sweep, ship
    // only the boundary labels that changed since they were last
    // shipped, batched across sweeps in a CoalescingExchanger and
    // flushed every `coalesce_every` sweeps. The exchanger runs in
    // explicit-flush mode (flush_bytes == 0): enqueue is purely local
    // and the flush schedule is sweep-indexed, hence rank-uniform — no
    // agreement collective. Peers read labels up to coalesce_every-1
    // sweeps stale between flushes; the majority vote tolerates the
    // lag (the census below only reads owned labels, which are always
    // current). With coalesce_every == 1 every change is delivered
    // every sweep, which is exactly the full refresh: bit-identical to
    // the path above.
    comm::CoalescingExchanger co(0, 0, policy);
    const std::vector<count_t>& scounts = halo.send_counts();
    const std::vector<lid_t>& slids = halo.send_lids();
    // Last label shipped per (destination, owned lid) slot; ghosts
    // start consistent (label == gid), so nothing is owed initially.
    std::vector<gid_t> shipped(slids.size());
    for (std::size_t i = 0; i < slids.size(); ++i)
      shipped[i] = result.label[slids[i]];
    comm::DestBuckets<LabelUpdate> buckets;
    const auto apply = [&](std::span<const LabelUpdate> arrivals) {
      bool moved = false;
      for (const LabelUpdate& u : arrivals) {
        const lid_t l = g.lid_of(u.gid);
        XTRA_ASSERT_MSG(l != kInvalidLid,
                        "coalesced label update for an unknown ghost");
        if (result.label[l] != u.label) {
          result.label[l] = u.label;
          moved = true;
        }
      }
      return moved;
    };

    for (int sweep = 0; sweep < sweeps; ++sweep) {
      bool changed = false;
      for (lid_t v = 0; v < g.n_local(); ++v) relabel(v, changed);
      // Stage one record per (destination, vertex) slot whose label
      // moved since it was last shipped.
      buckets.begin(comm.size());
      std::size_t slot = 0;
      for (int d = 0; d < comm.size(); ++d)
        for (count_t k = 0; k < scounts[static_cast<std::size_t>(d)];
             ++k, ++slot)
          if (result.label[slids[slot]] != shipped[slot]) buckets.count(d);
      buckets.commit();
      slot = 0;
      for (int d = 0; d < comm.size(); ++d)
        for (count_t k = 0; k < scounts[static_cast<std::size_t>(d)];
             ++k, ++slot) {
          const lid_t l = slids[slot];
          if (result.label[l] != shipped[slot]) {
            buckets.push(d, LabelUpdate{g.gid_of(l), result.label[l]});
            shipped[slot] = result.label[l];
          }
        }
      (void)co.enqueue(comm, buckets);  // local: explicit-flush mode
      ++result.info.supersteps;
      bool moved = false;
      if ((sweep + 1) % coalesce_every == 0)
        moved = apply(co.flush<LabelUpdate>(comm));
      prev = result.label;
      if (!comm.allreduce_or(changed)) {
        // Quiesce under staleness: deliver the stragglers; if any
        // ghost moved anywhere, the vote may still flip somewhere.
        moved = apply(co.flush<LabelUpdate>(comm)) || moved;
        prev = result.label;
        if (!comm.allreduce_or(moved)) break;
      }
    }
    // Sweep budget exhausted mid-batch: deliver what is still pending
    // so ghost labels match their owners' last state. pending_rounds
    // advances identically on every rank, so the branch is collective.
    if (co.pending_rounds() > 0) (void)apply(co.flush<LabelUpdate>(comm));
  }

  // Distinct-label census: each rank sends its distinct owned labels
  // to the label's owner; owners count distinct arrivals.
  std::vector<gid_t> distinct;
  distinct.reserve(g.n_local());
  for (lid_t v = 0; v < g.n_local(); ++v) distinct.push_back(result.label[v]);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  comm::DestBuckets<gid_t> buckets;
  buckets.build(
      comm.size(), distinct,
      [&g](const gid_t l) { return g.owner_of_gid(l); },
      [](const gid_t l) { return l; });
  comm::Exchanger ex(0, policy);
  const std::span<const gid_t> arrivals = ex.exchange(comm, buckets);
  std::vector<gid_t> recv(arrivals.begin(), arrivals.end());
  std::sort(recv.begin(), recv.end());
  recv.erase(std::unique(recv.begin(), recv.end()), recv.end());
  result.num_communities =
      comm.allreduce_sum(static_cast<count_t>(recv.size()));
  return result;
}

}  // namespace xtra::analytics
