#include <algorithm>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "graph/halo.hpp"
#include "util/flat_map.hpp"

namespace xtra::analytics {

CommunityResult label_propagation(sim::Comm& comm,
                                  const graph::DistGraph& g, int sweeps,
                                  comm::ShardPolicy policy) {
  CommunityResult result;
  detail::Meter meter(comm, result.info);
  graph::HaloPlan halo(comm, g, policy);

  result.label.resize(g.n_total());
  for (lid_t v = 0; v < g.n_total(); ++v) result.label[v] = g.gid_of(v);
  std::vector<gid_t> prev(result.label);

  // Scratch for majority counting: labels are arbitrary gids, so use a
  // sorted copy of the neighborhood's labels per vertex.
  std::vector<gid_t> nbr_labels;
  // Synchronous update: read prev, write label. Order is therefore
  // free, so each sweep updates the boundary vertices first, ships
  // them (the only labels any peer reads) while the interior computes,
  // and drains the ghost refresh at the end — bit-identical to the
  // all-then-exchange sweep.
  const auto relabel = [&](lid_t v, bool& changed) {
    const auto nbrs = g.neighbors(v);
    if (nbrs.empty()) return;
    nbr_labels.clear();
    for (const lid_t u : nbrs) nbr_labels.push_back(prev[u]);
    std::sort(nbr_labels.begin(), nbr_labels.end());
    // Majority label, ties toward the smaller label (deterministic).
    gid_t best = prev[v];
    std::size_t best_count = 0;
    for (std::size_t i = 0; i < nbr_labels.size();) {
      std::size_t j = i;
      while (j < nbr_labels.size() && nbr_labels[j] == nbr_labels[i]) ++j;
      if (j - i > best_count) {
        best_count = j - i;
        best = nbr_labels[i];
      }
      i = j;
    }
    if (best != result.label[v]) changed = true;
    result.label[v] = best;
  };
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    bool changed = false;
    halo.overlapped_superstep(comm, result.label,
                              [&](lid_t v) { relabel(v, changed); });
    prev = result.label;
    ++result.info.supersteps;
    if (!comm.allreduce_or(changed)) break;
  }

  // Distinct-label census: each rank sends its distinct owned labels
  // to the label's owner; owners count distinct arrivals.
  std::vector<gid_t> distinct;
  distinct.reserve(g.n_local());
  for (lid_t v = 0; v < g.n_local(); ++v) distinct.push_back(result.label[v]);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  comm::DestBuckets<gid_t> buckets;
  buckets.build(
      comm.size(), distinct,
      [&g](const gid_t l) { return g.owner_of_gid(l); },
      [](const gid_t l) { return l; });
  comm::Exchanger ex(0, policy);
  const std::span<const gid_t> arrivals = ex.exchange(comm, buckets);
  std::vector<gid_t> recv(arrivals.begin(), arrivals.end());
  std::sort(recv.begin(), recv.end());
  recv.erase(std::unique(recv.begin(), recv.end()), recv.end());
  result.num_communities =
      comm.allreduce_sum(static_cast<count_t>(recv.size()));
  return result;
}

}  // namespace xtra::analytics
