#include <algorithm>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"

namespace xtra::analytics {

CommunityResult label_propagation(sim::Comm& comm,
                                  const graph::DistGraph& g, int sweeps,
                                  comm::ShardPolicy policy,
                                  int coalesce_every) {
  CommLpProgram p;
  engine::Config cfg;
  cfg.max_supersteps = std::max(sweeps, 0);  // legacy: sweeps <= 0 runs none
  cfg.shard_policy = policy;
  cfg.coalesce_every = coalesce_every;
  const engine::Stats st = engine::run(comm, g, p, cfg);

  CommunityResult result;
  result.info = detail::to_run_info(st);
  result.label = std::move(p.label);
  result.num_communities = p.num_communities;
  return result;
}

}  // namespace xtra::analytics
