// The eight vertex programs behind the analytics suite — the paper's
// six Fig-8 workloads (algorithms follow Slota et al. [29]) plus the
// two engine-native ones the unified API opened (delta-capped SSSP,
// query-based approximate triangle count).
//
// Each program is a small struct of hooks executed by
// engine::run(comm, g, program, cfg) (see engine/engine.hpp for the
// contract): the engine owns the superstep loop, the halo plan, the
// pipeline/coalescing transports, and the convergence collectives;
// the program owns only its per-vertex update and its result state.
// The legacy analytics:: entry points in analytics.hpp are thin
// wrappers over these, bit-identical at default knobs.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "comm/dest_buckets.hpp"
#include "comm/query_reply.hpp"
#include "comm/sharded_buckets.hpp"
#include "engine/engine.hpp"
#include "graph/dist_graph.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace xtra::analytics {

inline constexpr count_t kInfDist = std::numeric_limits<count_t>::max();

/// Deterministic synthetic edge weight for the weighted workloads
/// (the DistGraph stores none): symmetric in its endpoints and
/// computable on any rank without communication, in [1, max_weight].
inline count_t edge_weight(gid_t a, gid_t b, std::uint64_t seed,
                           count_t max_weight) {
  const gid_t lo = std::min(a, b), hi = std::max(a, b);
  const std::uint64_t h =
      splitmix64(seed ^ (lo * 0x9e3779b97f4a7c15ULL + hi));
  return 1 + static_cast<count_t>(h % static_cast<std::uint64_t>(max_weight));
}

// ---------------------------------------------------------------------------
// PageRank — dense, fixed-iteration (cfg.max_supersteps), optional
// residual stop (cfg.tol). ctx.values carries the per-vertex
// contributions (rank/degree); `rank` is program state updated in
// apply() from the refreshed contributions. The dangling-mass
// allreduce rides the in-flight contribution exchange via mid().

struct PageRankProgram {
  using Value = double;
  static constexpr bool kConvergeOnChange = false;
  // update(v) reads rank[v] (written only in apply) and writes
  // values[v]; apply writes rank[v] and the per-vertex residual
  // scratch — all per-vertex slots, safe for concurrent distinct v.
  static constexpr bool kParallelUpdate = true;
  using Ctx = engine::DenseContext<PageRankProgram>;

  double damping = 0.85;

  std::vector<double> rank;  ///< size n_total (ghosts refreshed at finish)
  double sum = 0.0;          ///< global rank mass (~1.0)
  double inv_n = 0.0;
  double dangling = 0.0;
  std::vector<double> resid;  ///< per-vertex |delta| scratch (apply)

  void init(Ctx& ctx) {
    inv_n = 1.0 / static_cast<double>(ctx.g.n_global());
    ctx.values.assign(ctx.g.n_total(), 0.0);
    rank.assign(ctx.g.n_total(), inv_n);
    resid.assign(ctx.g.n_local(), 0.0);
  }
  void pre_superstep(Ctx& ctx) {
    // Dangling mass in fixed lid order, so the sum is bit-identical no
    // matter how the pipeline orders the contribution writes.
    dangling = 0.0;
    for (lid_t v = 0; v < ctx.g.n_local(); ++v)
      if (ctx.g.degree(v) == 0) dangling += rank[v];
  }
  void update(Ctx& ctx, lid_t v) {
    const count_t d = ctx.g.degree(v);
    ctx.values[v] = d == 0 ? 0.0 : rank[v] / static_cast<double>(d);
  }
  void mid(Ctx& ctx) { dangling = ctx.comm.allreduce_sum(dangling); }
  void apply(Ctx& ctx) {
    const double n = static_cast<double>(ctx.g.n_global());
    // Per-vertex gather (parallel in-core, serial out-of-core — see
    // DenseContext::for_owned); the residual folds serially in lid
    // order afterwards, so the sum's association — and hence the tol
    // stop — is identical at every thread count.
    ctx.for_owned([&](lid_t v) {
      double s = 0.0;
      for (const lid_t u : ctx.g.arcs(v)) s += ctx.values[u];
      const double next = (1.0 - damping) / n + damping * (s + dangling / n);
      resid[v] = std::abs(next - rank[v]);
      rank[v] = next;
    });
    for (lid_t v = 0; v < ctx.g.n_local(); ++v) ctx.residual += resid[v];
  }
  void finish(Ctx& ctx) {
    // Epilogue: refresh the ghost ranks while the mass check reduces —
    // the allreduce runs against the in-flight exchange.
    ctx.halo().prefetch_next(ctx.comm, rank);
    double local = 0.0;
    for (lid_t v = 0; v < ctx.g.n_local(); ++v) local += rank[v];
    sum = ctx.comm.allreduce_sum(local);
    ctx.halo().finish_prefetch(ctx.comm, rank);
  }
};

// ---------------------------------------------------------------------------
// Weakly connected components — dense, change-converging, no prev:
// asynchronous min-label hooking (reads live values, so each
// superstep's boundary-first order is free — the fixpoint, each
// component's min gid, is unique under any order or staleness).

struct WccProgram {
  using Value = gid_t;
  using Ctx = engine::DenseContext<WccProgram>;

  std::vector<gid_t> component;  ///< size n_total (moved from ctx.values)
  count_t num_components = 0;
  count_t largest_size = 0;

  void init(Ctx& ctx) {
    ctx.values.resize(ctx.g.n_total());
    for (lid_t v = 0; v < ctx.g.n_total(); ++v)
      ctx.values[v] = ctx.g.gid_of(v);
  }
  void update(Ctx& ctx, lid_t v) {
    gid_t best = ctx.values[v];
    // Undirected view: a directed graph's weak components use both
    // edge directions.
    for (const lid_t u : ctx.g.arcs(v))
      best = std::min(best, ctx.values[u]);
    if (ctx.g.directed())
      for (const lid_t u : ctx.g.in_arcs(v))
        best = std::min(best, ctx.values[u]);
    if (best < ctx.values[v]) {
      ctx.values[v] = best;
      ctx.changed = true;
    }
  }
  void finish(Ctx& ctx) {
    component = std::move(ctx.values);
    // Component census: ship (root, local_count) pairs to the root's
    // owner, which totals them.
    struct RootCount {
      gid_t root;
      count_t size;
    };
    const graph::DistGraph& g = ctx.g;
    std::vector<RootCount> local;
    {
      std::vector<gid_t> roots;
      roots.reserve(g.n_local());
      for (lid_t v = 0; v < g.n_local(); ++v)
        roots.push_back(component[v]);
      std::sort(roots.begin(), roots.end());
      for (std::size_t i = 0; i < roots.size();) {
        std::size_t j = i;
        while (j < roots.size() && roots[j] == roots[i]) ++j;
        local.push_back({roots[i], static_cast<count_t>(j - i)});
        i = j;
      }
    }
    comm::DestBuckets<RootCount> buckets;
    buckets.build(
        ctx.comm.size(), local,
        [&g](const RootCount& rc) { return g.owner_of_gid(rc.root); },
        [](const RootCount& rc) { return rc; });
    const std::span<const RootCount> arrivals =
        ctx.aux().exchange(ctx.comm, buckets);
    std::vector<RootCount> recv(arrivals.begin(), arrivals.end());
    std::sort(recv.begin(), recv.end(),
              [](const RootCount& a, const RootCount& b) {
                return a.root < b.root;
              });
    count_t num = 0;
    count_t largest = 0;
    for (std::size_t i = 0; i < recv.size();) {
      std::size_t j = i;
      count_t total = 0;
      while (j < recv.size() && recv[j].root == recv[i].root) {
        total += recv[j].size;
        ++j;
      }
      ++num;
      largest = std::max(largest, total);
      i = j;
    }
    num_components = ctx.comm.allreduce_sum(num);
    largest_size = ctx.comm.allreduce_max(largest);
  }
};

// ---------------------------------------------------------------------------
// Label-propagation community detection — dense, change-converging,
// synchronous (reads ctx.prev, writes ctx.values): majority label
// with ties toward the smaller label. The vote tolerates stale ghosts,
// so the program runs at any pipeline depth or coalescing cadence.

struct CommLpProgram {
  using Value = gid_t;
  static constexpr bool kUsesPrev = true;
  // Synchronous vote: update reads only ctx.prev (frozen during the
  // sweep) and writes values[v]; the sort scratch is per pool slot.
  static constexpr bool kParallelUpdate = true;
  using Ctx = engine::DenseContext<CommLpProgram>;

  std::vector<gid_t> label;  ///< size n_total (moved from ctx.values)
  count_t num_communities = 0;
  std::vector<std::vector<gid_t>> nbr_labels;  ///< per-slot vote scratch

  void init(Ctx& ctx) {
    nbr_labels.assign(static_cast<std::size_t>(par::num_threads()), {});
    ctx.values.resize(ctx.g.n_total());
    for (lid_t v = 0; v < ctx.g.n_total(); ++v)
      ctx.values[v] = ctx.g.gid_of(v);
  }
  void update(Ctx& ctx, lid_t v) {
    const auto nbrs = ctx.g.arcs(v);
    if (nbrs.empty()) return;
    auto& labels = nbr_labels[static_cast<std::size_t>(
        par::current_slot())];  // lint-ok: per-slot scratch
    labels.clear();
    for (const lid_t u : nbrs) labels.push_back(ctx.prev[u]);
    std::sort(labels.begin(), labels.end());
    gid_t best = ctx.prev[v];
    std::size_t best_count = 0;
    for (std::size_t i = 0; i < labels.size();) {
      std::size_t j = i;
      while (j < labels.size() && labels[j] == labels[i]) ++j;
      if (j - i > best_count) {
        best_count = j - i;
        best = labels[i];
      }
      i = j;
    }
    if (best != ctx.values[v]) ctx.note_changed();
    ctx.values[v] = best;
  }
  void finish(Ctx& ctx) {
    label = std::move(ctx.values);
    // Distinct-label census: each rank sends its distinct owned labels
    // to the label's owner; owners count distinct arrivals.
    const graph::DistGraph& g = ctx.g;
    std::vector<gid_t> distinct;
    distinct.reserve(g.n_local());
    for (lid_t v = 0; v < g.n_local(); ++v) distinct.push_back(label[v]);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    comm::DestBuckets<gid_t> buckets;
    buckets.build(
        ctx.comm.size(), distinct,
        [&g](const gid_t l) { return g.owner_of_gid(l); },
        [](const gid_t l) { return l; });
    const std::span<const gid_t> arrivals =
        ctx.aux().exchange(ctx.comm, buckets);
    std::vector<gid_t> recv(arrivals.begin(), arrivals.end());
    std::sort(recv.begin(), recv.end());
    recv.erase(std::unique(recv.begin(), recv.end()), recv.end());
    num_communities =
        ctx.comm.allreduce_sum(static_cast<count_t>(recv.size()));
  }
};

// ---------------------------------------------------------------------------
// Approximate k-core — dense, change-converging, synchronous:
// iterated neighborhood h-index (Lü et al. 2016), which contracts to
// the exact coreness. Values are monotone non-increasing upper
// bounds, so stale ghosts are just older bounds — safe at any
// pipeline depth or coalescing cadence.

namespace detail {

/// h-index of a value multiset: the largest h with >= h values >= h.
inline count_t h_index(std::vector<count_t>& values) {
  std::sort(values.begin(), values.end(), std::greater<count_t>());
  count_t h = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= static_cast<count_t>(i + 1))
      h = static_cast<count_t>(i + 1);
    else
      break;
  }
  return h;
}

}  // namespace detail

struct KCoreProgram {
  using Value = count_t;
  static constexpr bool kUsesPrev = true;
  // Synchronous h-index: update reads only ctx.prev and writes
  // values[v]; the sort scratch is per pool slot.
  static constexpr bool kParallelUpdate = true;
  using Ctx = engine::DenseContext<KCoreProgram>;

  std::vector<count_t> core;  ///< size n_total (moved from ctx.values)
  count_t max_core = 0;
  std::vector<std::vector<count_t>> nbr_core;  ///< per-slot h-index scratch

  void init(Ctx& ctx) {
    nbr_core.assign(static_cast<std::size_t>(par::num_threads()), {});
    ctx.values.resize(ctx.g.n_total());
    for (lid_t v = 0; v < ctx.g.n_total(); ++v)
      ctx.values[v] = ctx.g.degree(v);
  }
  void update(Ctx& ctx, lid_t v) {
    auto& cores = nbr_core[static_cast<std::size_t>(
        par::current_slot())];  // lint-ok: per-slot scratch
    cores.clear();
    for (const lid_t u : ctx.g.arcs(v)) cores.push_back(ctx.prev[u]);
    const count_t h =
        std::min<count_t>(detail::h_index(cores), ctx.g.degree(v));
    if (h < ctx.values[v]) {
      ctx.values[v] = h;
      ctx.note_changed();
    }
  }
  void finish(Ctx& ctx) {
    core = std::move(ctx.values);
    count_t local_max = 0;
    for (lid_t v = 0; v < ctx.g.n_local(); ++v)
      local_max = std::max(local_max, core[v]);
    max_core = ctx.comm.allreduce_max(local_max);
  }
};

// ---------------------------------------------------------------------------
// SCC trim stage — dense, change-converging, asynchronous peel:
// vertices with no live in- or out-neighbor are singleton SCCs; the
// surviving active set (the maximal subgraph where every vertex keeps
// one of each) is a unique fixpoint, so order and staleness are free.

struct SccTrimProgram {
  using Value = std::uint8_t;
  using Ctx = engine::DenseContext<SccTrimProgram>;

  std::vector<std::uint8_t> active;  ///< size n_total (moved out)

  void init(Ctx& ctx) { ctx.values.assign(ctx.g.n_total(), 1); }
  void update(Ctx& ctx, lid_t v) {
    if (!ctx.values[v]) return;
    count_t out_live = 0, in_live = 0;
    for (const lid_t u : ctx.g.arcs(v))
      if (ctx.values[u] && u != v) ++out_live;
    for (const lid_t u : ctx.g.in_arcs(v))
      if (ctx.values[u] && u != v) ++in_live;
    if (out_live == 0 || in_live == 0) {
      ctx.values[v] = 0;
      ctx.changed = true;
    }
  }
  void finish(Ctx& ctx) { active = std::move(ctx.values); }
};

// ---------------------------------------------------------------------------
// BFS — frontier program behind harmonic centrality and SCC's masked
// forward/backward reachability: unit-distance levels, optional
// active-subgraph mask, optional in-edge traversal.

struct BfsProgram {
  using Notify = gid_t;
  using Ctx = engine::FrontierContext<BfsProgram>;

  gid_t root = 0;
  bool use_in_edges = false;
  const std::vector<std::uint8_t>* active = nullptr;  ///< optional mask

  std::vector<count_t> levels;  ///< size n_total; kInfDist = unreached
  count_t max_level = 0;        ///< local deepest level reached
  count_t ecc = 0;              ///< global eccentricity (finish)

  bool eligible(lid_t l) const { return !active || (*active)[l]; }
  bool try_mark(Ctx& ctx, lid_t u) {
    if (levels[u] != kInfDist || !eligible(u)) return false;
    levels[u] = ctx.superstep + 1;
    return true;
  }

  void init(Ctx& ctx) {
    levels.assign(ctx.g.n_total(), kInfDist);
    if (ctx.g.owner_of_gid(root) == ctx.comm.rank()) {
      const lid_t l = ctx.g.lid_of(root);
      XTRA_ASSERT(l != kInvalidLid);
      if (eligible(l)) {
        levels[l] = 0;
        ctx.frontier.push_back(l);
      }
    }
  }
  graph::NeighborRef nbrs(Ctx& ctx, lid_t v) const {
    return use_in_edges ? ctx.g.in_arcs(v) : ctx.g.arcs(v);
  }
  bool improves(Ctx&, lid_t /*v*/, lid_t u) const {
    return levels[u] == kInfDist && eligible(u);
  }
  bool relax(Ctx& ctx, lid_t /*v*/, lid_t u) { return try_mark(ctx, u); }
  Notify make_notify(Ctx& ctx, lid_t l) const { return ctx.g.gid_of(l); }
  lid_t receive(Ctx& ctx, const Notify& gid) {
    const lid_t l = ctx.g.lid_of(gid);
    XTRA_ASSERT(l != kInvalidLid && ctx.g.is_owned(l));
    // Arrivals land within the level that reached them: ctx.superstep
    // has not advanced yet, so the mark is level superstep + 1.
    return try_mark(ctx, l) ? l : kInvalidLid;
  }
  void post_level(Ctx& ctx) {
    if (!ctx.next.empty()) max_level = ctx.superstep;
  }
  void finish(Ctx& ctx) { ecc = ctx.comm.allreduce_max(max_level); }
};

// ---------------------------------------------------------------------------
// Batched multi-source BFS — N roots, one dense slot each, advancing
// one level per superstep through a single sweep and a single
// exchange (engine::run_multi_frontier). Slot s's level array is
// bit-identical to a lone BfsProgram run from roots[s] — slots never
// interact — but the whole batch costs one termination allreduce per
// level instead of one per source per level. This is what retired
// harmonic centrality's per-source loop.

struct MultiBfsProgram {
  using Notify = gid_t;
  using Ctx = engine::MultiFrontierContext<MultiBfsProgram>;

  std::vector<gid_t> roots;  ///< one per slot, slot id = index

  /// Slot-major levels: slot s's plane is [s * stride, (s+1) * stride).
  std::vector<count_t> levels;
  std::vector<count_t> max_level;  ///< per-slot local deepest level
  std::vector<count_t> ecc;        ///< per-slot global eccentricity (finish)
  lid_t stride = 0;                ///< n_total

  count_t level_of(count_t slot, lid_t l) const {
    return levels[static_cast<std::size_t>(slot) * stride + l];
  }
  bool try_mark(Ctx& ctx, count_t slot, lid_t u) {
    count_t& lv = levels[static_cast<std::size_t>(slot) * stride + u];
    if (lv != kInfDist) return false;
    lv = ctx.superstep + 1;
    return true;
  }

  void init(Ctx& ctx) {
    ctx.num_slots = static_cast<count_t>(roots.size());
    stride = ctx.g.n_total();
    levels.assign(roots.size() * static_cast<std::size_t>(stride), kInfDist);
    max_level.assign(roots.size(), 0);
    for (count_t s = 0; s < ctx.num_slots; ++s) {
      const gid_t root = roots[static_cast<std::size_t>(s)];
      if (ctx.g.owner_of_gid(root) != ctx.comm.rank()) continue;
      const lid_t l = ctx.g.lid_of(root);
      XTRA_ASSERT(l != kInvalidLid);
      levels[static_cast<std::size_t>(s) * stride + l] = 0;
      ctx.frontier.push_back({s, l});
    }
  }
  graph::NeighborRef nbrs(Ctx& ctx, count_t /*slot*/, lid_t v) const {
    return ctx.g.arcs(v);
  }
  bool improves(Ctx&, count_t slot, lid_t /*v*/, lid_t u) const {
    return level_of(slot, u) == kInfDist;
  }
  bool relax(Ctx& ctx, count_t slot, lid_t /*v*/, lid_t u) {
    return try_mark(ctx, slot, u);
  }
  Notify make_notify(Ctx& ctx, count_t /*slot*/, lid_t l) const {
    return ctx.g.gid_of(l);
  }
  lid_t receive(Ctx& ctx, count_t slot, const Notify& gid) {
    const lid_t l = ctx.g.lid_of(gid);
    XTRA_ASSERT(l != kInvalidLid && ctx.g.is_owned(l));
    return try_mark(ctx, slot, l) ? l : kInvalidLid;
  }
  void post_level(Ctx& ctx) {
    for (const graph::SlotVertex& e : ctx.next)
      max_level[static_cast<std::size_t>(e.slot)] = ctx.superstep;
  }
  void finish(Ctx& ctx) {
    ecc = max_level;
    ctx.comm.allreduce_max(ecc);
  }
};

// ---------------------------------------------------------------------------
// Delta-capped SSSP — the weighted frontier program the engine API
// opened: synthetic deterministic edge weights (edge_weight), a
// min-distance relax, and a delta-stepping-style cap — each superstep
// only expands vertices within the current distance threshold,
// deferring the rest to a pending pool that post_level() releases
// bucket by bucket as the threshold advances. Relaxations are
// monotone, so re-expansion after a later improvement is safe.

struct SsspNotify {
  gid_t gid;
  count_t dist;
};

struct DeltaSsspProgram {
  using Notify = SsspNotify;
  using Ctx = engine::FrontierContext<DeltaSsspProgram>;

  gid_t root = 0;
  count_t delta = 8;        ///< bucket width (distance units)
  count_t max_weight = 16;  ///< edge weights are in [1, max_weight]
  std::uint64_t weight_seed = 1;

  std::vector<count_t> dist;  ///< size n_total; kInfDist = unreached
  count_t threshold = 0;      ///< expand only dist <= threshold
  std::vector<lid_t> pending;              ///< reached, beyond threshold
  std::vector<std::uint8_t> in_pending;    ///< pending membership mask

  count_t weight(const Ctx& ctx, lid_t v, lid_t u) const {
    return edge_weight(ctx.g.gid_of(v), ctx.g.gid_of(u), weight_seed,
                       max_weight);
  }

  void init(Ctx& ctx) {
    dist.assign(ctx.g.n_total(), kInfDist);
    in_pending.assign(ctx.g.n_total(), 0);
    threshold = delta;
    if (ctx.g.owner_of_gid(root) == ctx.comm.rank()) {
      const lid_t l = ctx.g.lid_of(root);
      XTRA_ASSERT(l != kInvalidLid);
      dist[l] = 0;
      ctx.frontier.push_back(l);
    }
  }
  graph::NeighborRef nbrs(Ctx& ctx, lid_t v) const {
    return ctx.g.arcs(v);
  }
  bool improves(Ctx& ctx, lid_t v, lid_t u) const {
    return dist[v] + weight(ctx, v, u) < dist[u];
  }
  bool relax(Ctx& ctx, lid_t v, lid_t u) {
    const count_t nd = dist[v] + weight(ctx, v, u);
    if (nd >= dist[u]) return false;
    dist[u] = nd;
    return true;
  }
  Notify make_notify(Ctx& ctx, lid_t l) const {
    return {ctx.g.gid_of(l), dist[l]};
  }
  lid_t receive(Ctx& ctx, const Notify& n) {
    const lid_t l = ctx.g.lid_of(n.gid);
    XTRA_ASSERT(l != kInvalidLid && ctx.g.is_owned(l));
    if (n.dist >= dist[l]) return kInvalidLid;
    dist[l] = n.dist;
    return l;
  }
  void post_level(Ctx& ctx) {
    // Keep the current bucket; defer the rest. A vertex can sit in
    // both `next` and `pending` after a late improvement — the
    // re-expansion is a no-op, so correctness only needs monotonicity.
    std::size_t w = 0;
    for (const lid_t l : ctx.next) {
      if (dist[l] <= threshold)
        ctx.next[w++] = l;
      else if (!in_pending[l]) {
        in_pending[l] = 1;
        pending.push_back(l);
      }
    }
    ctx.next.resize(w);
    // Bucket exhausted everywhere: advance the threshold to the next
    // non-empty bucket and release the newly eligible deferrals. The
    // loop state is rank-uniform (allreduced), so every rank agrees.
    while (!ctx.comm.allreduce_or(!ctx.next.empty())) {
      count_t minp = kInfDist;
      for (const lid_t l : pending) minp = std::min(minp, dist[l]);
      minp = ctx.comm.allreduce_min(minp);
      if (minp == kInfDist) break;  // nothing pending anywhere: done
      // Ceiling to the bucket containing minp (a minp on the bucket
      // boundary must not overshoot into the next bucket — the cap is
      // one bucket of work per superstep).
      threshold = ((minp + delta - 1) / delta) * delta;
      std::size_t keep = 0;
      for (const lid_t l : pending) {
        if (dist[l] <= threshold) {
          in_pending[l] = 0;
          ctx.next.push_back(l);
        } else {
          pending[keep++] = l;
        }
      }
      pending.resize(keep);
    }
  }
};

// ---------------------------------------------------------------------------
// Approximate triangle count — the query_reply-based dense program
// the engine API opened. Each owned vertex is a wedge center: its
// (deduplicated) neighbor pairs either all become closure queries or,
// past sample_cap, a deterministic uniform sample of them scaled by
// wedges/cap (unbiased). Queries ship to the smaller endpoint's owner
// (who holds that vertex's full adjacency) and the replies ride back
// aligned, so values[v] accumulates the estimated closed wedges at v;
// every triangle has three centers, hence the final /3. Exact when no
// vertex exceeds the cap. Publishes nothing on the wire per vertex
// (kExchangesValues = false): all traffic is the ctx.aux()
// query_reply round trip, one superstep.

struct TriangleCountProgram {
  using Value = double;
  static constexpr bool kConvergeOnChange = false;
  static constexpr bool kExchangesValues = false;
  using Ctx = engine::DenseContext<TriangleCountProgram>;

  count_t sample_cap = 256;  ///< wedge-sample budget per center
  std::uint64_t seed = 1;

  double triangles = 0.0;  ///< global estimate (finish)
  count_t sampled_centers = 0;  ///< owned vertices that hit the cap

  struct Query {
    gid_t a;  ///< answered by a's owner: is b in N(a)?
    gid_t b;
  };

  /// A staged closure query before slot assignment: the wire record
  /// plus its slot-aligned side data (sharded emission, see finish()).
  struct Staged {
    Query q;
    double s;      ///< unbiased sample scale
    lid_t center;  ///< wedge center the reply credits
  };

  std::vector<std::vector<gid_t>> adj;  ///< owned sorted unique nbr gids
  comm::DestBuckets<Query> buckets;
  comm::ShardedBuckets<Staged> staged;
  std::vector<double> scale;    ///< per staged query slot
  std::vector<lid_t> center;    ///< per staged query slot

  void init(Ctx& ctx) {
    ctx.values.assign(ctx.g.n_total(), 0.0);
    adj.resize(ctx.g.n_local());
    // Each vertex writes only its own adjacency row: chunk-safe
    // (serial when out-of-core — see DenseContext::for_owned).
    ctx.for_owned([&](lid_t v) {
      auto& a = adj[v];
      a.clear();
      for (const lid_t u : ctx.g.arcs(v)) a.push_back(ctx.g.gid_of(u));
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
    });
    buckets.begin(ctx.comm.size());
    scale.clear();
    center.clear();
  }
  /// Stage pass 1 runs through update(); pass 2 + the wire trip run in
  /// finish() (DestBuckets needs the counts before any push).
  void update(Ctx&, lid_t) {}
  void for_each_wedge(const Ctx& ctx, lid_t v, auto&& emit) {
    const auto& a = adj[v];
    const auto w = static_cast<count_t>(a.size());
    if (w < 2) return;
    const count_t wedges = w * (w - 1) / 2;
    if (wedges <= sample_cap) {
      for (count_t i = 0; i < w; ++i)
        for (count_t j = i + 1; j < w; ++j)
          emit(a[static_cast<std::size_t>(i)],
               a[static_cast<std::size_t>(j)], 1.0);
      return;
    }
    // Deterministic uniform sample (with replacement), seeded by the
    // gid so the draw is placement-independent; each sample carries
    // the unbiased scale wedges / cap.
    const double s = static_cast<double>(wedges) /
                     static_cast<double>(sample_cap);
    std::uint64_t state = seed ^ (ctx.g.gid_of(v) * 0x9e3779b97f4a7c15ULL);
    for (count_t k = 0; k < sample_cap; ++k) {
      state = splitmix64(state);
      const auto i = static_cast<count_t>(
          state % static_cast<std::uint64_t>(w));
      std::uint64_t draw = splitmix64(state ^ 0x5851f42d4c957f2dULL);
      auto j = static_cast<count_t>(
          draw % static_cast<std::uint64_t>(w - 1));
      if (j >= i) ++j;  // uniform over ordered pairs i != j
      emit(a[static_cast<std::size_t>(i)],
           a[static_cast<std::size_t>(j)], s);
    }
  }
  void finish(Ctx& ctx) {
    const graph::DistGraph& g = ctx.g;
    // Wedge generation is the O(n * cap) bulk of the run, and each
    // center's stream reads only its own (immutable) adjacency row, so
    // it shards: chunks emit concurrently, then the chunk-order replay
    // assigns every query the slot the historical serial two-pass
    // staging gave it (see comm/sharded_buckets.hpp).
    staged.emit(static_cast<count_t>(g.n_local()),
                [&](count_t, count_t lo, count_t hi, auto&& put) {
                  for (count_t i = lo; i < hi; ++i) {
                    const lid_t v = static_cast<lid_t>(i);
                    for_each_wedge(ctx, v, [&](gid_t ga, gid_t gb, double s) {
                      const gid_t qlo = std::min(ga, gb);
                      const gid_t qhi = std::max(ga, gb);
                      put(g.owner_of_gid(qlo), Staged{{qlo, qhi}, s, v});
                    });
                  }
                });
    scale.resize(static_cast<std::size_t>(staged.total()));
    center.resize(static_cast<std::size_t>(staged.total()));
    staged.place(
        buckets, ctx.comm.size(),
        [](const Staged& st) { return st.q; },
        [&](count_t slot, const Staged& st) {
          scale[static_cast<std::size_t>(slot)] = st.s;
          center[static_cast<std::size_t>(slot)] = st.center;
        });
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const auto& a = adj[v];
      if (static_cast<count_t>(a.size()) >= 2 &&
          static_cast<count_t>(a.size()) *
                  (static_cast<count_t>(a.size()) - 1) / 2 >
              sample_cap)
        ++sampled_centers;
    }
    const std::span<const std::uint8_t> replies = comm::query_reply(
        ctx.comm, ctx.aux(), buckets.records(), buckets.counts(),
        [&](const Query& q) -> std::uint8_t {
          const lid_t l = g.lid_of(q.a);
          XTRA_ASSERT(l != kInvalidLid && g.is_owned(l));
          return std::binary_search(adj[l].begin(), adj[l].end(), q.b)
                     ? 1
                     : 0;
        });
    for (std::size_t i = 0; i < replies.size(); ++i)
      if (replies[i]) ctx.values[center[i]] += scale[i];
    double local = 0.0;
    for (lid_t v = 0; v < g.n_local(); ++v) local += ctx.values[v];
    triangles = ctx.comm.allreduce_sum(local) / 3.0;
    sampled_centers = ctx.comm.allreduce_sum(sampled_centers);
  }
};

}  // namespace xtra::analytics
