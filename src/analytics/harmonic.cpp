#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"
#include "util/rng.hpp"

namespace xtra::analytics {

HarmonicResult harmonic_centrality(sim::Comm& comm,
                                   const graph::DistGraph& g,
                                   int num_sources, std::uint64_t seed,
                                   const engine::Config& cfg) {
  HarmonicResult result;
  detail::Meter meter(comm, result.info);

  // Deterministic source sample every rank can compute without
  // communication.
  result.sources.reserve(static_cast<std::size_t>(num_sources));
  for (int i = 0; i < num_sources; ++i)
    result.sources.push_back(
        splitmix64(seed + static_cast<std::uint64_t>(i)) % g.n_global());

  for (const gid_t source : result.sources) {
    BfsProgram bfs;
    bfs.root = source;
    engine::run(comm, g, bfs, cfg);
    double local = 0.0;
    for (lid_t v = 0; v < g.n_local(); ++v)
      if (bfs.levels[v] > 0 && bfs.levels[v] != kInfDist)
        local += 1.0 / static_cast<double>(bfs.levels[v]);
    result.centrality.push_back(comm.allreduce_sum(local));
    result.info.supersteps += bfs.ecc;
  }
  return result;
}

HarmonicResult harmonic_centrality(sim::Comm& comm,
                                   const graph::DistGraph& g,
                                   int num_sources, std::uint64_t seed) {
  return harmonic_centrality(comm, g, num_sources, seed, engine::Config{});
}

}  // namespace xtra::analytics
