#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "graph/bfs.hpp"
#include "util/rng.hpp"

namespace xtra::analytics {

HarmonicResult harmonic_centrality(sim::Comm& comm,
                                   const graph::DistGraph& g,
                                   int num_sources, std::uint64_t seed) {
  HarmonicResult result;
  detail::Meter meter(comm, result.info);

  // Deterministic source sample every rank can compute without
  // communication.
  result.sources.reserve(static_cast<std::size_t>(num_sources));
  for (int i = 0; i < num_sources; ++i)
    result.sources.push_back(
        splitmix64(seed + static_cast<std::uint64_t>(i)) % g.n_global());

  std::vector<count_t> levels;
  for (const gid_t source : result.sources) {
    const count_t ecc = bfs_levels(comm, g, source, levels);
    double local = 0.0;
    for (lid_t v = 0; v < g.n_local(); ++v)
      if (levels[v] > 0)
        local += 1.0 / static_cast<double>(levels[v]);
    result.centrality.push_back(comm.allreduce_sum(local));
    result.info.supersteps += ecc;
  }
  return result;
}

}  // namespace xtra::analytics
