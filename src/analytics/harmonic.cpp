#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"
#include "util/rng.hpp"

namespace xtra::analytics {

HarmonicResult harmonic_centrality(sim::Comm& comm,
                                   const graph::DistGraph& g,
                                   int num_sources, std::uint64_t seed,
                                   const engine::Config& cfg) {
  HarmonicResult result;
  detail::Meter meter(comm, result.info);

  // Deterministic source sample every rank can compute without
  // communication.
  result.sources.reserve(static_cast<std::size_t>(num_sources));
  for (int i = 0; i < num_sources; ++i)
    result.sources.push_back(
        splitmix64(seed + static_cast<std::uint64_t>(i)) % g.n_global());

  // One batched run: every source is a slot of the multi-source BFS,
  // so all N traversals share each level's sweep, exchange, and
  // termination allreduce. Slots never interact, so slot s's levels —
  // and hence each centrality sum below, accumulated in the same lid
  // order and reduced in the same rank order — are bit-identical to
  // the retired per-source loop's.
  MultiBfsProgram bfs;
  bfs.roots = result.sources;
  engine::run(comm, g, bfs, cfg);

  std::vector<double> local(result.sources.size(), 0.0);
  for (std::size_t s = 0; s < result.sources.size(); ++s) {
    const std::size_t base = s * static_cast<std::size_t>(bfs.stride);
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const count_t lv = bfs.levels[base + v];
      if (lv > 0 && lv != kInfDist)
        local[s] += 1.0 / static_cast<double>(lv);
    }
  }
  comm.allreduce_sum(local);
  result.centrality = std::move(local);
  // The legacy meter summed each source's eccentricity (the levels
  // that source ran); keep the field's meaning across the migration.
  for (const count_t e : bfs.ecc) result.info.supersteps += e;
  return result;
}

HarmonicResult harmonic_centrality(sim::Comm& comm,
                                   const graph::DistGraph& g,
                                   int num_sources, std::uint64_t seed) {
  return harmonic_centrality(comm, g, num_sources, seed, engine::Config{});
}

}  // namespace xtra::analytics
