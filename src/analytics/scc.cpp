#include <limits>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"

namespace xtra::analytics {

SccResult largest_scc(sim::Comm& comm, const graph::DistGraph& g,
                      const engine::Config& cfg) {
  SccResult result;
  detail::Meter meter(comm, result.info);

  // --- Trim (MultiStep stage 1): peel vertices with no live in- or
  // out-neighbor; the surviving active set is a unique fixpoint.
  SccTrimProgram trim;
  result.info.supersteps += engine::run(comm, g, trim, cfg).supersteps;
  const std::vector<std::uint8_t>& active = trim.active;

  // --- Pivot: the highest-degree active vertex (globally agreed).
  count_t best_deg = -1;
  gid_t best_gid = std::numeric_limits<gid_t>::max();
  for (lid_t v = 0; v < g.n_local(); ++v)
    if (active[v] && g.degree(v) > best_deg) {
      best_deg = g.degree(v);
      best_gid = g.gid_of(v);
    }
  const count_t global_deg = comm.allreduce_max(best_deg);
  if (global_deg < 0) {
    // Graph fully trimmed: every SCC is a singleton.
    result.in_scc.assign(g.n_total(), 0);
    result.scc_size = g.n_global() > 0 ? 1 : 0;
    return result;
  }
  if (best_deg != global_deg) best_gid = std::numeric_limits<gid_t>::max();
  const gid_t pivot = comm.allreduce_min(best_gid);

  // --- Forward/backward reachability from the pivot over the active
  // subgraph; the SCC is the intersection (MultiStep stage 2).
  BfsProgram fw, bw;
  fw.root = bw.root = pivot;
  fw.active = bw.active = &active;
  bw.use_in_edges = true;
  result.info.supersteps += engine::run(comm, g, fw, cfg).supersteps;
  result.info.supersteps += engine::run(comm, g, bw, cfg).supersteps;

  result.in_scc.assign(g.n_total(), 0);
  count_t local_size = 0;
  for (lid_t v = 0; v < g.n_total(); ++v) {
    if (fw.levels[v] != kInfDist && bw.levels[v] != kInfDist) {
      result.in_scc[v] = 1;
      if (g.is_owned(v)) ++local_size;
    }
  }
  result.scc_size = comm.allreduce_sum(local_size);
  return result;
}

SccResult largest_scc(sim::Comm& comm, const graph::DistGraph& g) {
  return largest_scc(comm, g, engine::Config{});
}

}  // namespace xtra::analytics
