#include <limits>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "graph/frontier.hpp"
#include "graph/halo.hpp"

namespace xtra::analytics {

namespace {

/// BFS over the active subgraph, following out- or in-edges. Marks
/// reached owned+ghost vertices in `reached`. Collective. The caller's
/// exchanger is reused across levels (and both sweeps); each level's
/// notification exchange is overlapped — started before, and drained
/// after, the local frontier expansion.
void masked_bfs(sim::Comm& comm, comm::Exchanger& ex,
                const graph::DistGraph& g, gid_t root,
                const std::vector<std::uint8_t>& active, bool use_in_edges,
                std::vector<std::uint8_t>& reached, count_t& supersteps) {
  reached.assign(g.n_total(), 0);
  std::vector<lid_t> frontier;
  if (g.owner_of_gid(root) == comm.rank()) {
    const lid_t l = g.lid_of(root);
    XTRA_ASSERT(l != kInvalidLid);
    if (active[l]) {
      reached[l] = 1;
      frontier.push_back(l);
    }
  }
  comm::DestBuckets<gid_t> buckets;
  std::vector<gid_t> notify;
  std::vector<lid_t> next;
  while (comm.allreduce_or(!frontier.empty())) {
    graph::expand_frontier_overlapped(
        comm, g, ex, buckets, notify, frontier,
        [&](lid_t v) {
          return use_in_edges ? g.in_neighbors(v) : g.neighbors(v);
        },
        [&](lid_t u) -> bool { return reached[u] || !active[u]; },
        [&](lid_t u) {
          if (reached[u] || !active[u]) return false;
          reached[u] = 1;
          return true;
        },
        next);
    std::swap(frontier, next);
    ++supersteps;
  }
}

}  // namespace

SccResult largest_scc(sim::Comm& comm, const graph::DistGraph& g) {
  SccResult result;
  detail::Meter meter(comm, result.info);
  graph::HaloPlan halo(comm, g);

  // --- Trim: vertices with no active in- or out-neighbor are
  // singleton SCCs; peel them iteratively (MultiStep stage 1).
  std::vector<std::uint8_t> active(g.n_total(), 1);
  bool changed = true;
  while (comm.allreduce_or(changed)) {
    changed = false;
    for (lid_t v = 0; v < g.n_local(); ++v) {
      if (!active[v]) continue;
      count_t out_live = 0, in_live = 0;
      for (const lid_t u : g.neighbors(v))
        if (active[u] && u != v) ++out_live;
      for (const lid_t u : g.in_neighbors(v))
        if (active[u] && u != v) ++in_live;
      if (out_live == 0 || in_live == 0) {
        active[v] = 0;
        changed = true;
      }
    }
    halo.exchange(comm, active);
    ++result.info.supersteps;
  }

  // --- Pivot: the highest-degree active vertex (globally agreed).
  count_t best_deg = -1;
  gid_t best_gid = std::numeric_limits<gid_t>::max();
  for (lid_t v = 0; v < g.n_local(); ++v)
    if (active[v] && g.degree(v) > best_deg) {
      best_deg = g.degree(v);
      best_gid = g.gid_of(v);
    }
  const count_t global_deg = comm.allreduce_max(best_deg);
  if (global_deg < 0) {
    // Graph fully trimmed: every SCC is a singleton.
    result.in_scc.assign(g.n_total(), 0);
    result.scc_size = g.n_global() > 0 ? 1 : 0;
    return result;
  }
  if (best_deg != global_deg) best_gid = std::numeric_limits<gid_t>::max();
  const gid_t pivot = comm.allreduce_min(best_gid);

  // --- Forward/backward reachability from the pivot; the SCC is the
  // intersection (MultiStep stage 2).
  std::vector<std::uint8_t> fw, bw;
  comm::Exchanger ex;
  masked_bfs(comm, ex, g, pivot, active, /*use_in_edges=*/false, fw,
             result.info.supersteps);
  masked_bfs(comm, ex, g, pivot, active, /*use_in_edges=*/true, bw,
             result.info.supersteps);

  result.in_scc.assign(g.n_total(), 0);
  count_t local_size = 0;
  for (lid_t v = 0; v < g.n_total(); ++v) {
    if (fw[v] && bw[v]) {
      result.in_scc[v] = 1;
      if (g.is_owned(v)) ++local_size;
    }
  }
  result.scc_size = comm.allreduce_sum(local_size);
  return result;
}

}  // namespace xtra::analytics
