#include <cmath>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "graph/halo.hpp"

namespace xtra::analytics {

PageRankResult pagerank(sim::Comm& comm, const graph::DistGraph& g,
                        int iters, double damping, int pipeline_depth,
                        double tol) {
  PageRankResult result;
  detail::Meter meter(comm, result.info);
  graph::HaloPlan halo(comm, g);
  graph::SuperstepPipeline<double> pipe(halo, pipeline_depth);

  const double n = static_cast<double>(g.n_global());
  std::vector<double> contrib(g.n_total(), 0.0);
  result.rank.assign(g.n_total(), 1.0 / n);

  for (int iter = 0; iter < iters; ++iter) {
    // Dangling mass in fixed lid order, so the sum is bit-identical no
    // matter how the pipeline orders the contribution writes below.
    double dangling = 0.0;
    for (lid_t v = 0; v < g.n_local(); ++v)
      if (g.degree(v) == 0) dangling += result.rank[v];

    // Ship the per-vertex contributions boundary-first; the dangling
    // allreduce rides the in-flight exchange. At depth >= 1 the
    // *previous* superstep's ghost contributions drain into `contrib`
    // between interior chunks instead, and this superstep's refresh is
    // carried into the next.
    pipe.superstep(
        comm, contrib,
        [&](lid_t v) {
          const count_t d = g.degree(v);
          contrib[v] =
              d == 0 ? 0.0 : result.rank[v] / static_cast<double>(d);
        },
        [&] { dangling = comm.allreduce_sum(dangling); });

    double residual = 0.0;
    for (lid_t v = 0; v < g.n_local(); ++v) {
      double sum = 0.0;
      for (const lid_t u : g.neighbors(v)) sum += contrib[u];
      const double next =
          (1.0 - damping) / n + damping * (sum + dangling / n);
      residual += std::abs(next - result.rank[v]);
      result.rank[v] = next;
    }
    ++result.info.supersteps;
    // Residual stop (tol == 0 keeps the fixed-iteration contract and
    // its collective count).
    if (tol > 0.0 && comm.allreduce_sum(residual) <= tol) break;
  }
  pipe.flush(comm, contrib);  // no-op at depth 0

  // Epilogue: refresh the ghost ranks while the mass check reduces —
  // the allreduce runs against the in-flight exchange instead of
  // after it.
  halo.prefetch_next(comm, result.rank);
  double local_sum = 0.0;
  for (lid_t v = 0; v < g.n_local(); ++v) local_sum += result.rank[v];
  result.sum = comm.allreduce_sum(local_sum);
  halo.finish_prefetch(comm, result.rank);
  return result;
}

}  // namespace xtra::analytics
