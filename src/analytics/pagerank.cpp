#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "graph/halo.hpp"

namespace xtra::analytics {

PageRankResult pagerank(sim::Comm& comm, const graph::DistGraph& g,
                        int iters, double damping) {
  PageRankResult result;
  detail::Meter meter(comm, result.info);
  graph::HaloPlan halo(comm, g);

  const double n = static_cast<double>(g.n_global());
  std::vector<double> contrib(g.n_total(), 0.0);
  result.rank.assign(g.n_total(), 1.0 / n);

  for (int iter = 0; iter < iters; ++iter) {
    // Contribution of every owned vertex, mirrored to ghosts.
    double dangling = 0.0;
    for (lid_t v = 0; v < g.n_local(); ++v) {
      const count_t d = g.degree(v);
      if (d == 0) {
        dangling += result.rank[v];
        contrib[v] = 0.0;
      } else {
        contrib[v] = result.rank[v] / static_cast<double>(d);
      }
    }
    halo.exchange(comm, contrib);
    dangling = comm.allreduce_sum(dangling);

    for (lid_t v = 0; v < g.n_local(); ++v) {
      double sum = 0.0;
      for (const lid_t u : g.neighbors(v)) sum += contrib[u];
      result.rank[v] =
          (1.0 - damping) / n + damping * (sum + dangling / n);
    }
    ++result.info.supersteps;
  }
  // Refresh ghost ranks so callers see a consistent vector.
  halo.exchange(comm, result.rank);

  double local_sum = 0.0;
  for (lid_t v = 0; v < g.n_local(); ++v) local_sum += result.rank[v];
  result.sum = comm.allreduce_sum(local_sum);
  return result;
}

}  // namespace xtra::analytics
