#include <algorithm>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"

namespace xtra::analytics {

PageRankResult pagerank(sim::Comm& comm, const graph::DistGraph& g,
                        int iters, double damping, int pipeline_depth,
                        double tol) {
  PageRankProgram p;
  p.damping = damping;
  engine::Config cfg;
  cfg.max_supersteps = std::max(iters, 0);  // legacy: iters <= 0 runs none
  cfg.pipeline_depth = pipeline_depth;
  cfg.tol = tol;
  const engine::Stats st = engine::run(comm, g, p, cfg);

  PageRankResult result;
  result.info = detail::to_run_info(st);
  result.rank = std::move(p.rank);
  result.sum = p.sum;
  return result;
}

}  // namespace xtra::analytics
