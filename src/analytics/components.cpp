#include <algorithm>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "comm/dest_buckets.hpp"
#include "comm/exchanger.hpp"
#include "graph/halo.hpp"

namespace xtra::analytics {

ComponentsResult weakly_connected_components(sim::Comm& comm,
                                             const graph::DistGraph& g,
                                             comm::ShardPolicy policy) {
  ComponentsResult result;
  detail::Meter meter(comm, result.info);
  graph::HaloPlan halo(comm, g, policy);

  result.component.resize(g.n_total());
  for (lid_t v = 0; v < g.n_total(); ++v) result.component[v] = g.gid_of(v);

  // Min-label propagation converges to the same fixed point under any
  // update order, so each superstep updates the boundary vertices
  // first, ships them (the only values any peer reads) while the
  // interior computes, and drains the ghost refresh at the end.
  const auto relax = [&](lid_t v, bool& changed) {
    gid_t best = result.component[v];
    // Undirected view: a directed graph's weak components use both
    // edge directions.
    for (const lid_t u : g.neighbors(v))
      best = std::min(best, result.component[u]);
    if (g.directed())
      for (const lid_t u : g.in_neighbors(v))
        best = std::min(best, result.component[u]);
    if (best < result.component[v]) {
      result.component[v] = best;
      changed = true;
    }
  };
  bool changed = true;
  while (comm.allreduce_or(changed)) {
    changed = false;
    halo.overlapped_superstep(comm, result.component,
                              [&](lid_t v) { relax(v, changed); });
    ++result.info.supersteps;
  }

  // Component census: ship (root, local_count) pairs to the root's
  // owner, which totals them.
  struct RootCount {
    gid_t root;
    count_t size;
  };
  std::vector<RootCount> local;
  {
    std::vector<gid_t> roots;
    roots.reserve(g.n_local());
    for (lid_t v = 0; v < g.n_local(); ++v)
      roots.push_back(result.component[v]);
    std::sort(roots.begin(), roots.end());
    for (std::size_t i = 0; i < roots.size();) {
      std::size_t j = i;
      while (j < roots.size() && roots[j] == roots[i]) ++j;
      local.push_back({roots[i], static_cast<count_t>(j - i)});
      i = j;
    }
  }
  comm::DestBuckets<RootCount> buckets;
  buckets.build(
      comm.size(), local,
      [&g](const RootCount& rc) { return g.owner_of_gid(rc.root); },
      [](const RootCount& rc) { return rc; });
  comm::Exchanger ex(0, policy);
  const std::span<const RootCount> arrivals = ex.exchange(comm, buckets);
  std::vector<RootCount> recv(arrivals.begin(), arrivals.end());
  std::sort(recv.begin(), recv.end(),
            [](const RootCount& a, const RootCount& b) {
              return a.root < b.root;
            });
  count_t num = 0;
  count_t largest = 0;
  for (std::size_t i = 0; i < recv.size();) {
    std::size_t j = i;
    count_t total = 0;
    while (j < recv.size() && recv[j].root == recv[i].root) {
      total += recv[j].size;
      ++j;
    }
    ++num;
    largest = std::max(largest, total);
    i = j;
  }
  result.num_components = comm.allreduce_sum(num);
  result.largest_size = comm.allreduce_max(largest);
  return result;
}

}  // namespace xtra::analytics
