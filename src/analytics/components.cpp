#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"

namespace xtra::analytics {

ComponentsResult weakly_connected_components(sim::Comm& comm,
                                             const graph::DistGraph& g,
                                             comm::ShardPolicy policy) {
  WccProgram p;
  engine::Config cfg;
  cfg.shard_policy = policy;
  const engine::Stats st = engine::run(comm, g, p, cfg);

  ComponentsResult result;
  result.info = detail::to_run_info(st);
  result.component = std::move(p.component);
  result.num_components = p.num_components;
  result.largest_size = p.largest_size;
  return result;
}

}  // namespace xtra::analytics
