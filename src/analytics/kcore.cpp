#include <algorithm>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"

namespace xtra::analytics {

KCoreResult kcore_approx(sim::Comm& comm, const graph::DistGraph& g,
                         int rounds, int pipeline_depth) {
  KCoreProgram p;
  engine::Config cfg;
  cfg.max_supersteps = std::max(rounds, 0);  // legacy: rounds <= 0 runs none
  cfg.pipeline_depth = pipeline_depth;
  const engine::Stats st = engine::run(comm, g, p, cfg);

  KCoreResult result;
  result.info = detail::to_run_info(st);
  result.core = std::move(p.core);
  result.max_core = p.max_core;
  return result;
}

}  // namespace xtra::analytics
