#include <algorithm>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "graph/halo.hpp"

namespace xtra::analytics {

namespace {

/// h-index of a value multiset: the largest h with >= h values >= h.
count_t h_index(std::vector<count_t>& values) {
  std::sort(values.begin(), values.end(), std::greater<count_t>());
  count_t h = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= static_cast<count_t>(i + 1))
      h = static_cast<count_t>(i + 1);
    else
      break;
  }
  return h;
}

}  // namespace

KCoreResult kcore_approx(sim::Comm& comm, const graph::DistGraph& g,
                         int rounds) {
  KCoreResult result;
  detail::Meter meter(comm, result.info);
  graph::HaloPlan halo(comm, g);

  // Coreness upper bound: the degree. Repeated neighborhood h-index
  // contraction converges to the exact coreness (Lü et al. 2016).
  result.core.resize(g.n_total());
  for (lid_t v = 0; v < g.n_total(); ++v) result.core[v] = g.degree(v);

  std::vector<count_t> nbr_core;
  for (int round = 0; round < rounds; ++round) {
    bool changed = false;
    for (lid_t v = 0; v < g.n_local(); ++v) {
      nbr_core.clear();
      for (const lid_t u : g.neighbors(v)) nbr_core.push_back(result.core[u]);
      const count_t h = std::min<count_t>(h_index(nbr_core), g.degree(v));
      if (h < result.core[v]) {
        result.core[v] = h;
        changed = true;
      }
    }
    halo.exchange(comm, result.core);
    ++result.info.supersteps;
    if (!comm.allreduce_or(changed)) break;
  }

  count_t local_max = 0;
  for (lid_t v = 0; v < g.n_local(); ++v)
    local_max = std::max(local_max, result.core[v]);
  result.max_core = comm.allreduce_max(local_max);
  return result;
}

}  // namespace xtra::analytics
