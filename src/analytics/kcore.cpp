#include <algorithm>

#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "graph/halo.hpp"

namespace xtra::analytics {

namespace {

/// h-index of a value multiset: the largest h with >= h values >= h.
count_t h_index(std::vector<count_t>& values) {
  std::sort(values.begin(), values.end(), std::greater<count_t>());
  count_t h = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= static_cast<count_t>(i + 1))
      h = static_cast<count_t>(i + 1);
    else
      break;
  }
  return h;
}

}  // namespace

KCoreResult kcore_approx(sim::Comm& comm, const graph::DistGraph& g,
                         int rounds, int pipeline_depth) {
  KCoreResult result;
  detail::Meter meter(comm, result.info);
  graph::HaloPlan halo(comm, g);
  graph::SuperstepPipeline<count_t> pipe(halo, pipeline_depth);

  // Coreness upper bound: the degree. Repeated neighborhood h-index
  // contraction converges to the exact coreness (Lü et al. 2016). The
  // update is synchronous (reads prev, writes core) — a deliberate
  // change from the earlier in-place Gauss-Seidel sweep, which read
  // same-round updates and was therefore order-dependent: the
  // boundary-first pipelined sweep requires order-freedom, and the
  // synchronous form is Lü et al.'s formulation. Both contract to the
  // same (unique) coreness fixpoint; Gauss-Seidel merely got there in
  // fewer rounds, which is what the pipeline's overlap buys back.
  // Synchronous also makes the sweep stale-tolerant: values are
  // monotone non-increasing, so a stale ghost is just an older upper
  // bound. At depth >= 1 the staleness compounds: round k's exchange
  // is drained during round k+1, and the sweep reads the previous
  // round's prev snapshot, so a ghost read can be up to two rounds
  // old.
  result.core.resize(g.n_total());
  for (lid_t v = 0; v < g.n_total(); ++v) result.core[v] = g.degree(v);
  std::vector<count_t> prev(result.core);

  std::vector<count_t> nbr_core;
  for (int round = 0; round < rounds; ++round) {
    bool changed = false;
    pipe.superstep(
        comm, result.core,
        [&](lid_t v) {
          nbr_core.clear();
          for (const lid_t u : g.neighbors(v))
            nbr_core.push_back(prev[u]);
          const count_t h =
              std::min<count_t>(h_index(nbr_core), g.degree(v));
          if (h < result.core[v]) {
            result.core[v] = h;
            changed = true;
          }
        },
        [] {});
    ++result.info.supersteps;
    if (!comm.allreduce_or(changed)) {
      if (pipe.depth() == 0) break;
      // Stale-tolerant convergence: deliver the in-flight decrements;
      // if any ghost moved, the peel may have further to go.
      pipe.flush(comm, result.core);
      bool ghost_moved = false;
      for (lid_t v = g.n_local(); v < g.n_total(); ++v)
        if (result.core[v] != prev[v]) ghost_moved = true;
      prev = result.core;
      if (!comm.allreduce_or(ghost_moved)) break;
      continue;
    }
    prev = result.core;
  }
  // Ghosts converge to the owners' last-shipped (final) values.
  pipe.flush(comm, result.core);

  count_t local_max = 0;
  for (lid_t v = 0; v < g.n_local(); ++v)
    local_max = std::max(local_max, result.core[v]);
  result.max_core = comm.allreduce_max(local_max);
  return result;
}

}  // namespace xtra::analytics
