#include "analytics/analytics.hpp"
#include "analytics/detail.hpp"
#include "analytics/programs.hpp"
#include "engine/engine.hpp"

namespace xtra::analytics {

SsspResult sssp(sim::Comm& comm, const graph::DistGraph& g, gid_t root,
                count_t delta, count_t max_weight,
                std::uint64_t weight_seed, const engine::Config& cfg) {
  DeltaSsspProgram p;
  p.root = root;
  p.delta = delta;
  p.max_weight = max_weight;
  p.weight_seed = weight_seed;
  const engine::Stats st = engine::run(comm, g, p, cfg);

  SsspResult result;
  result.info = detail::to_run_info(st);
  result.dist = std::move(p.dist);
  count_t reached = 0;
  count_t max_dist = 0;
  for (lid_t v = 0; v < g.n_local(); ++v)
    if (result.dist[v] != kInfDist) {
      ++reached;
      max_dist = std::max(max_dist, result.dist[v]);
    }
  result.reached = comm.allreduce_sum(reached);
  result.max_dist = comm.allreduce_max(max_dist);
  return result;
}

}  // namespace xtra::analytics
