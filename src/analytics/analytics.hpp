// Distributed graph analytics — the six workloads of Fig 8 (algorithms
// follow Slota et al. [29], the paper's companion analytics study)
// plus the two engine-native ones (delta-capped SSSP, approximate
// triangle count). Every analytic is bulk-synchronous over mpisim:
// local compute + halo exchange per superstep, so execution time and
// communication volume respond to the partition quality exactly as in
// the paper.
//
// Every kernel executes through the unified vertex-program engine
// (engine/engine.hpp): the preferred API is
//   engine::run(comm, g, program, engine::Config{...})
// with the program structs of analytics/programs.hpp, which inherits
// every transport knob (shard policy, chunk size, pipeline depth,
// coalescing) uniformly. The entry points below are kept as thin
// wrappers — bit-identical to engine::run at their default knobs —
// for callers of the historical per-kernel signatures; composite
// kernels (harmonic centrality, SCC) additionally take an
// engine::Config overload, which is their engine-native form.
//
// Each run reports wall seconds and the bytes this rank sent (callers
// aggregate via Comm::global_bytes_sent-style reductions).
#pragma once

#include <vector>

#include "comm/shard_policy.hpp"
#include "engine/config.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

namespace xtra::analytics {

/// Measurement common to all analytics.
struct RunInfo {
  double seconds = 0.0;
  count_t comm_bytes = 0;  ///< bytes sent by this rank
  count_t supersteps = 0;
};

/// PageRank (PR): up to `iters` damped power iterations over the
/// undirected adjacency (the paper treats all edges as undirected).
/// `pipeline_depth` selects the cross-superstep ghost pipeline
/// (graph::SuperstepPipeline): 0 drains each superstep's contribution
/// exchange in-step (bit-identical to the blocking path); >= 1 carries
/// it into the next superstep, so the rank update reads ghost
/// contributions up to one superstep stale — the damped iteration
/// still contracts to the same fixed point. `tol` > 0 adds a
/// residual-based stop (sum |rank' - rank| <= tol, one allreduce per
/// superstep); 0 keeps the fixed-iteration contract.
struct PageRankResult {
  RunInfo info;
  std::vector<double> rank;  ///< size n_total (ghost entries refreshed)
  double sum = 0.0;          ///< global rank mass (~1.0)
};
PageRankResult pagerank(sim::Comm& comm, const graph::DistGraph& g,
                        int iters = 20, double damping = 0.85,
                        int pipeline_depth = 0, double tol = 0.0);

/// Weakly connected components (WCC) via min-label hooking. `policy`
/// routes the per-superstep ghost refresh flat or hierarchically
/// (identical results either way).
struct ComponentsResult {
  RunInfo info;
  std::vector<gid_t> component;  ///< size n_total, component root gid
  count_t num_components = 0;
  count_t largest_size = 0;
};
ComponentsResult weakly_connected_components(
    sim::Comm& comm, const graph::DistGraph& g,
    comm::ShardPolicy policy = comm::ShardPolicy::kFlat);

/// Label-propagation community detection (LP): `sweeps` synchronous
/// majority-label rounds. `policy` as for WCC. `coalesce_every` > 0
/// switches the ghost refresh from a full per-sweep halo exchange to
/// sparse changed-label updates batched in a comm::CoalescingExchanger
/// and flushed every `coalesce_every` sweeps (and at convergence), so
/// peers read labels up to coalesce_every-1 sweeps stale between
/// flushes — the majority vote tolerates the lag, and the wire moves
/// strictly fewer collectives per sweep. coalesce_every == 1 delivers
/// every sweep and is bit-identical to the default path.
struct CommunityResult {
  RunInfo info;
  std::vector<gid_t> label;  ///< size n_total
  count_t num_communities = 0;
};
CommunityResult label_propagation(
    sim::Comm& comm, const graph::DistGraph& g, int sweeps = 10,
    comm::ShardPolicy policy = comm::ShardPolicy::kFlat,
    int coalesce_every = 0);

/// Approximate k-core decomposition (KC): iterated synchronous
/// neighborhood h-index (Lü et al.), which converges to the exact
/// coreness; `rounds` caps the iteration count. `pipeline_depth` as
/// for pagerank(): at depth >= 1 the ghost refresh is delivered one
/// round late, and since the sweep reads the previous round's
/// snapshot, a ghost value read by the update can be up to *two*
/// rounds old. Stale values are older (hence larger) upper bounds, so
/// the contraction still reaches the same coreness, possibly a few
/// rounds later; convergence additionally quiesces the in-flight
/// decrements.
struct KCoreResult {
  RunInfo info;
  std::vector<count_t> core;  ///< size n_total
  count_t max_core = 0;
};
KCoreResult kcore_approx(sim::Comm& comm, const graph::DistGraph& g,
                         int rounds = 20, int pipeline_depth = 0);

/// Harmonic centrality (HC) of `num_sources` sampled vertices:
/// HC(v) = sum_u 1/d(u,v). All sources run as ONE batched
/// multi-source BFS (MultiBfsProgram slots — one sweep and one
/// exchange per level for the whole sample, bit-identical to the
/// retired per-source loop). The Config overload is the engine-native
/// form: cfg routes the shared notification exchange (shard policy,
/// chunk size).
struct HarmonicResult {
  RunInfo info;
  std::vector<gid_t> sources;
  std::vector<double> centrality;  ///< aligned with sources
};
HarmonicResult harmonic_centrality(sim::Comm& comm,
                                   const graph::DistGraph& g,
                                   int num_sources, std::uint64_t seed,
                                   const engine::Config& cfg);
HarmonicResult harmonic_centrality(sim::Comm& comm,
                                   const graph::DistGraph& g,
                                   int num_sources = 16,
                                   std::uint64_t seed = 1);

/// Largest strongly connected component extraction (SCC) on a
/// *directed* graph: trim + forward/backward BFS from a max-degree
/// pivot (the MultiStep scheme of [29], first stage). The Config
/// overload is the engine-native form: cfg routes the trim's halo
/// refresh and both BFS notification exchanges.
struct SccResult {
  RunInfo info;
  std::vector<std::uint8_t> in_scc;  ///< size n_total, 1 if in largest SCC
  count_t scc_size = 0;
};
SccResult largest_scc(sim::Comm& comm, const graph::DistGraph& g,
                      const engine::Config& cfg);
SccResult largest_scc(sim::Comm& comm, const graph::DistGraph& g);

/// Delta-capped single-source shortest paths (SSSP) over the
/// deterministic synthetic edge weights of
/// analytics::edge_weight(a, b, weight_seed, max_weight): each
/// superstep expands only frontier vertices within the current
/// distance threshold (bucket width `delta`), deferring the rest — a
/// delta-stepping-style cap on per-superstep relaxation work. dist is
/// kInfDist (see programs.hpp) for unreachable vertices.
struct SsspResult {
  RunInfo info;
  std::vector<count_t> dist;  ///< size n_total (ghost entries best-known)
  count_t reached = 0;        ///< vertices with a finite distance
  count_t max_dist = 0;       ///< largest finite distance (global)
};
SsspResult sssp(sim::Comm& comm, const graph::DistGraph& g, gid_t root,
                count_t delta = 8, count_t max_weight = 16,
                std::uint64_t weight_seed = 1,
                const engine::Config& cfg = {});

/// Approximate triangle count (TC): every owned vertex stages closure
/// queries for its wedges (all of them, or a deterministic unbiased
/// sample of `sample_cap` past the cap) through a query_reply round
/// trip to the smaller endpoint's owner. Exact when no vertex exceeds
/// the cap.
struct TriangleResult {
  RunInfo info;
  double triangles = 0.0;       ///< global (estimated) triangle count
  count_t sampled_centers = 0;  ///< vertices that hit the sample cap
};
TriangleResult triangle_count(sim::Comm& comm, const graph::DistGraph& g,
                              count_t sample_cap = 256,
                              std::uint64_t seed = 1,
                              const engine::Config& cfg = {});

}  // namespace xtra::analytics
