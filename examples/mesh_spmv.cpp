// Scenario: accelerate iterative solvers' SpMV with partition-aware
// layouts (the paper's Table III workload, Trilinos/Epetra-style).
//
// Compares four layouts of the same matrix (3D mesh Laplacian
// structure): 1D-Random, 1D-XtraPuLP, 2D-Random, 2D-XtraPuLP, showing
// the communication-volume ordering the paper reports.
#include <cstdio>

#include "baseline/partitioners.hpp"
#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "spmv/spmv.hpp"

int main() {
  using namespace xtra;
  constexpr int kRanks = 4;
  constexpr int kIters = 50;
  const graph::EdgeList el = gen::mesh3d(30, 30, 30);

  // XtraPuLP map (parts == ranks).
  std::vector<part_t> xp_parts;
  sim::run_world(kRanks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, el, graph::VertexDist::block(el.n, kRanks));
    core::Params params;
    params.nparts = kRanks;
    const auto r = core::partition(comm, g, params);
    const auto global = core::gather_global_parts(comm, g, r.parts);
    if (comm.rank() == 0) xp_parts = global;
  });
  const std::vector<part_t> rand_parts =
      baseline::random_partition(el.n, kRanks, 5);

  std::printf("%d SpMVs on a %llu-row mesh matrix, %d ranks\n", kIters,
              static_cast<unsigned long long>(el.n), kRanks);
  struct Config {
    const char* name;
    const std::vector<part_t>* parts;
    spmv::Layout layout;
  };
  const Config configs[] = {
      {"1D-Random", &rand_parts, spmv::Layout::kOneD},
      {"1D-XtraPuLP", &xp_parts, spmv::Layout::kOneD},
      {"2D-Random", &rand_parts, spmv::Layout::kTwoD},
      {"2D-XtraPuLP", &xp_parts, spmv::Layout::kTwoD},
  };
  for (const Config& config : configs) {
    double seconds = 0.0;
    count_t bytes = 0;
    double checksum = 0.0;
    sim::run_world(kRanks, [&](sim::Comm& comm) {
      spmv::DistSpmv mv(comm, el, spmv::owners_from_parts(*config.parts),
                        config.layout);
      const auto stats = mv.run(comm, kIters);
      const double t = -comm.allreduce_min(-stats.seconds);
      const count_t b = comm.allreduce_sum(stats.comm_bytes);
      if (comm.rank() == 0) {
        seconds = t;
        bytes = b;
        checksum = stats.checksum;
      }
    });
    std::printf("  %-13s %.3fs  %8.1f KB communicated  (checksum %.4f)\n",
                config.name, seconds,
                static_cast<double>(bytes) / 1024.0, checksum);
  }
  std::printf("checksums agree across layouts: same matrix, same result.\n");
  return 0;
}
