// Scenario: speed up distributed analytics on a social network by
// partitioning first — the paper's motivating workload (Fig 8),
// expressed through the unified vertex-program engine API.
//
// Builds an LJ-style community graph and runs PageRank + label
// propagation + WCC as engine programs (engine::run with one
// engine::Config carrying every transport knob) twice — random
// placement vs. XtraPuLP placement — and reports the
// communication-volume and time savings. The per-kernel engine::Stats
// ledger (JSON-exportable) shows where the bytes went.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "analytics/programs.hpp"
#include "core/xtrapulp.hpp"
#include "engine/engine.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

int main() {
  using namespace xtra;
  constexpr int kRanks = 4;
  const graph::EdgeList el =
      gen::community_graph(30'000, 14, 0.8, 2.3, 7);

  // One config for every kernel: transport knobs ride core::Params so
  // analytics and partitioning are driven from the same struct.
  core::Params params;
  params.nparts = kRanks;
  // XTRA_THREADS=N adds intra-rank worker threads (MPI+X); results
  // and comm volume are identical at any width (DESIGN.md §6).
  if (const char* t = std::getenv("XTRA_THREADS"))
    params.num_threads = std::atoi(t);
  const engine::Config cfg = engine::Config::from_params(params);

  struct Totals {
    double seconds = 0.0;
    count_t bytes = 0;
  };
  auto run_suite = [&](const graph::VertexDist& dist, bool print_json) {
    Totals totals;
    sim::run_world(kRanks, [&](sim::Comm& comm) {
      const graph::DistGraph g = graph::build_dist_graph(comm, el, dist);

      analytics::PageRankProgram pr;
      engine::Config pr_cfg = cfg;
      pr_cfg.max_supersteps = 20;
      const engine::Stats pr_st = engine::run(comm, g, pr, pr_cfg);

      analytics::CommLpProgram lp;
      engine::Config lp_cfg = cfg;
      lp_cfg.max_supersteps = 10;
      const engine::Stats lp_st = engine::run(comm, g, lp, lp_cfg);

      analytics::WccProgram cc;
      const engine::Stats cc_st = engine::run(comm, g, cc, cfg);

      const double t = -comm.allreduce_min(
          -(pr_st.seconds + lp_st.seconds + cc_st.seconds));
      const count_t b = comm.allreduce_sum(
          pr_st.comm_bytes + lp_st.comm_bytes + cc_st.comm_bytes);
      if (comm.rank() == 0) {
        totals = {t, b};
        if (print_json)
          std::printf("  pagerank stats: %s\n", pr_st.to_json().c_str());
      }
    });
    return totals;
  };

  // Baseline: random vertex placement.
  const Totals random_run =
      run_suite(graph::VertexDist::random(el.n, kRanks, 3), false);

  // Partition with XtraPuLP (parts == ranks), then place by part.
  std::vector<part_t> parts;
  double partition_seconds = 0.0;
  sim::run_world(kRanks, [&](sim::Comm& comm) {
    const graph::DistGraph g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, kRanks, 3));
    const auto r = core::partition(comm, g, params);
    const auto global = core::gather_global_parts(comm, g, r.parts);
    if (comm.rank() == 0) {
      parts = global;
      partition_seconds = r.total_seconds;
    }
  });
  auto owners = std::make_shared<std::vector<int>>(parts.begin(), parts.end());
  const Totals partitioned_run = run_suite(
      graph::VertexDist::explicit_map(el.n, kRanks, owners), true);

  std::printf("analytics suite (PR + LP + WCC) on %d ranks\n", kRanks);
  std::printf("  random placement:    %.2fs, %.1f MB communicated\n",
              random_run.seconds,
              static_cast<double>(random_run.bytes) / (1 << 20));
  std::printf("  XtraPuLP placement:  %.2fs, %.1f MB communicated "
              "(+%.2fs partitioning)\n",
              partitioned_run.seconds,
              static_cast<double>(partitioned_run.bytes) / (1 << 20),
              partition_seconds);
  std::printf("  comm volume reduced %.1fx\n",
              static_cast<double>(random_run.bytes) /
                  static_cast<double>(partitioned_run.bytes));
  return 0;
}
