// Scenario: speed up distributed analytics on a social network by
// partitioning first — the paper's motivating workload (Fig 8).
//
// Builds an LJ-style community graph, runs PageRank + label
// propagation + WCC twice (random placement vs. XtraPuLP placement)
// and reports the communication-volume and time savings.
#include <cstdio>
#include <memory>

#include "analytics/analytics.hpp"
#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"

int main() {
  using namespace xtra;
  constexpr int kRanks = 4;
  const graph::EdgeList el =
      gen::community_graph(30'000, 14, 0.8, 2.3, 7);

  struct Totals {
    double seconds = 0.0;
    count_t bytes = 0;
  };
  auto run_suite = [&](const graph::VertexDist& dist) {
    Totals totals;
    sim::run_world(kRanks, [&](sim::Comm& comm) {
      const graph::DistGraph g = graph::build_dist_graph(comm, el, dist);
      const auto pr = analytics::pagerank(comm, g, 20);
      const auto lp = analytics::label_propagation(comm, g, 10);
      const auto cc = analytics::weakly_connected_components(comm, g);
      const double t = -comm.allreduce_min(
          -(pr.info.seconds + lp.info.seconds + cc.info.seconds));
      const count_t b = comm.allreduce_sum(
          pr.info.comm_bytes + lp.info.comm_bytes + cc.info.comm_bytes);
      if (comm.rank() == 0) totals = {t, b};
    });
    return totals;
  };

  // Baseline: random vertex placement.
  const Totals random_run =
      run_suite(graph::VertexDist::random(el.n, kRanks, 3));

  // Partition with XtraPuLP (parts == ranks), then place by part.
  std::vector<part_t> parts;
  double partition_seconds = 0.0;
  sim::run_world(kRanks, [&](sim::Comm& comm) {
    const graph::DistGraph g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, kRanks, 3));
    core::Params params;
    params.nparts = kRanks;
    const auto r = core::partition(comm, g, params);
    const auto global = core::gather_global_parts(comm, g, r.parts);
    if (comm.rank() == 0) {
      parts = global;
      partition_seconds = r.total_seconds;
    }
  });
  auto owners = std::make_shared<std::vector<int>>(parts.begin(), parts.end());
  const Totals partitioned_run =
      run_suite(graph::VertexDist::explicit_map(el.n, kRanks, owners));

  std::printf("analytics suite (PR + LP + WCC) on %d ranks\n", kRanks);
  std::printf("  random placement:    %.2fs, %.1f MB communicated\n",
              random_run.seconds,
              static_cast<double>(random_run.bytes) / (1 << 20));
  std::printf("  XtraPuLP placement:  %.2fs, %.1f MB communicated "
              "(+%.2fs partitioning)\n",
              partitioned_run.seconds,
              static_cast<double>(partitioned_run.bytes) / (1 << 20),
              partition_seconds);
  std::printf("  comm volume reduced %.1fx\n",
              static_cast<double>(random_run.bytes) /
                  static_cast<double>(partitioned_run.bytes));
  return 0;
}
