// partition_tool: command-line partitioner over edge-list files — the
// binary a downstream user runs on their own graphs.
//
//   partition_tool <edges.txt|edges.bin> <nparts> [options] [out.parts]
//
// Options:
//   --ranks N        simulated ranks (default 4)
//   --imbalance F    vertex & edge imbalance ratio (default 0.10)
//   --init S         bfs|random|block (default bfs)
//   --single-obj     disable the edge balancing stage
//   --seed N
//
// XTRA_THREADS=N runs N intra-rank worker threads (MPI+X); the labels
// produced are identical at any thread count (DESIGN.md §6).
//
// Output: one part id per line, in vertex-id order (omit out.parts to
// print quality metrics only).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/io.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: partition_tool <edges.txt|edges.bin> <nparts>\n"
               "       [--ranks N] [--imbalance F] [--init bfs|random|block]\n"
               "       [--single-obj] [--seed N] [out.parts]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xtra;
  if (argc < 3) usage();
  const std::string path = argv[1];
  core::Params params;
  params.nparts = static_cast<part_t>(std::atoi(argv[2]));
  if (const char* t = std::getenv("XTRA_THREADS"))
    params.num_threads = std::atoi(t);
  int nranks = 4;
  std::string out_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--ranks") {
      nranks = std::atoi(next());
    } else if (arg == "--imbalance") {
      params.vert_imbalance = params.edge_imbalance = std::atof(next());
    } else if (arg == "--init") {
      const std::string init = next();
      if (init == "bfs") params.init = core::InitStrategy::kBfsGrowing;
      else if (init == "random") params.init = core::InitStrategy::kRandom;
      else if (init == "block") params.init = core::InitStrategy::kBlock;
      else usage();
    } else if (arg == "--single-obj") {
      params.edge_phases = false;
    } else if (arg == "--seed") {
      params.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg[0] == '-') {
      usage();
    } else {
      out_path = arg;
    }
  }

  try {
    graph::EdgeList el = path.size() > 4 &&
                                 path.substr(path.size() - 4) == ".bin"
                             ? graph::read_edge_list_binary(path)
                             : graph::read_edge_list_text(path);
    if (el.directed) el = graph::symmetrized(el);
    std::fprintf(stderr, "loaded %llu vertices, %lld edges\n",
                 static_cast<unsigned long long>(el.n),
                 static_cast<long long>(el.edge_count()));

    std::vector<part_t> parts;
    sim::run_world(nranks, [&](sim::Comm& comm) {
      const auto g = graph::build_dist_graph(
          comm, el, graph::VertexDist::random(el.n, comm.size()));
      const auto r = core::partition(comm, g, params);
      const auto q = metrics::evaluate_dist(comm, g, r.parts, params.nparts);
      const auto global = core::gather_global_parts(comm, g, r.parts);
      if (comm.rank() == 0) {
        parts = global;
        std::fprintf(stderr,
                     "partitioned in %.2fs: cut=%.4f maxcut=%.4f "
                     "vimb=%.3f eimb=%.3f\n",
                     r.total_seconds, q.edge_cut_ratio, q.scaled_max_cut,
                     q.vertex_imbalance, q.edge_imbalance);
      }
    });

    if (!out_path.empty()) {
      std::FILE* f = std::fopen(out_path.c_str(), "w");
      if (!f) throw std::runtime_error("cannot open " + out_path);
      for (const part_t p : parts) std::fprintf(f, "%d\n", p);
      std::fclose(f);
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
