// Quickstart: partition a graph with XtraPuLP in ~30 lines.
//
//   $ ./examples/quickstart
//
// Generates a small-world graph, runs the full multi-constraint
// multi-objective pipeline on 4 simulated ranks, and prints the
// quality metrics the paper reports (edge cut ratio, scaled max cut,
// balance).
#include <cstdio>

#include "core/xtrapulp.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "metrics/quality.hpp"
#include "mpisim/comm.hpp"

int main() {
  using namespace xtra;

  // 1. A graph as an edge list (here: generated; see graph/io.hpp for
  //    loading SNAP-style files).
  const graph::EdgeList el = gen::community_graph(
      /*n=*/20'000, /*avg_degree=*/12, /*p_in=*/0.6, /*alpha=*/2.3,
      /*seed=*/42);

  // 2. Launch a world of simulated MPI ranks; everything inside the
  //    lambda runs once per rank, exactly like an MPI program.
  sim::run_world(4, [&](sim::Comm& comm) {
    // 3. Distribute the graph (random 1D distribution, §III-A).
    const graph::DistGraph g = graph::build_dist_graph(
        comm, el, graph::VertexDist::random(el.n, comm.size()));

    // 4. Partition into 8 parts with the paper's default parameters.
    core::Params params;
    params.nparts = 8;
    const core::PartitionResult result = core::partition(comm, g, params);

    // 5. Evaluate.
    const metrics::QualityReport q =
        metrics::evaluate_dist(comm, g, result.parts, params.nparts);
    if (comm.rank() == 0) {
      std::printf("partitioned %llu vertices / %lld edges into %d parts\n",
                  static_cast<unsigned long long>(g.n_global()),
                  static_cast<long long>(g.m_global()), params.nparts);
      std::printf("  time            %.2fs (init %.2fs)\n",
                  result.total_seconds, result.init_seconds);
      std::printf("  edge cut ratio  %.3f\n", q.edge_cut_ratio);
      std::printf("  scaled max cut  %.3f\n", q.scaled_max_cut);
      std::printf("  vertex balance  %.3f (constraint %.2f)\n",
                  q.vertex_imbalance, 1.0 + params.vert_imbalance);
      std::printf("  edge balance    %.3f (constraint %.2f)\n",
                  q.edge_imbalance, 1.0 + params.edge_imbalance);
    }
  });
  return 0;
}
