// Scenario: an online graph-query service over the partitioned graph
// (DESIGN.md §10) — a deterministic Poisson trace of point lookups,
// k-hop neighborhoods, multi-source BFS, and personalized-PageRank
// queries served by the superstep-packing scheduler, with tail
// latency measured on the virtual clock. Re-running this example
// prints byte-identical numbers: every latency derives from the
// alpha-beta wire model plus allreduced compute billing, never wall
// time.
#include <cstdio>

#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "mpisim/comm.hpp"
#include "serve/loadgen.hpp"
#include "serve/scheduler.hpp"

int main() {
  using namespace xtra;
  constexpr int kRanks = 4;
  const graph::EdgeList el = gen::community_graph(4'000, 8, 0.6, 2.3, 3);

  serve::LoadGenConfig trace;
  trace.num_queries = 32;
  trace.rate_qps = 60.0;
  trace.seed = 11;
  trace.khop_depth = 2;
  trace.ppr_depth = 4;

  std::printf("serving %lld queries at %.0f qps over %llu vertices, "
              "%d ranks\n\n",
              static_cast<long long>(trace.num_queries), trace.rate_qps,
              static_cast<unsigned long long>(el.n), kRanks);

  // Slot budget 1 serves queries one at a time; a wider budget packs
  // every in-flight traversal into shared supersteps — same answers,
  // fewer collectives, better tail latency under load.
  for (const count_t budget : {count_t{1}, count_t{8}}) {
    sim::run_world(
        kRanks,
        [&](sim::Comm& comm) {
          const auto g = graph::build_dist_graph(
              comm, el, graph::VertexDist::random(el.n, kRanks, 17));
          const std::vector<serve::Query> queries =
              serve::LoadGen::generate(trace, g.n_global());
          serve::ServeConfig cfg;
          cfg.slot_budget = budget;
          serve::Scheduler sched(cfg);
          const std::vector<serve::QueryResult> results =
              sched.run(comm, g, queries);
          if (comm.rank() != 0) return;
          const serve::ServeStats& s = sched.stats();
          std::printf("slot budget %lld: p50 %.2f ms  p95 %.2f ms  "
                      "p99 %.2f ms  %.1f q/s  occupancy %.2f\n",
                      static_cast<long long>(budget), s.p50_latency * 1e3,
                      s.p95_latency * 1e3, s.p99_latency * 1e3,
                      s.queries_per_sec, s.slot_occupancy);
          if (budget == 1) return;
          // A few individual results (identical under either budget).
          const char* names[] = {"lookup", "khop", "bfs", "ppr"};
          for (std::size_t i = 0; i < 4 && i < results.size(); ++i) {
            const serve::QueryResult& r = results[i];
            std::printf("  q%zu %-6s value %-5lld score %.4f  "
                        "latency %.2f ms\n",
                        i, names[static_cast<int>(r.kind)],
                        static_cast<long long>(r.value), r.score,
                        r.latency_seconds() * 1e3);
          }
        },
        /*ranks_per_node=*/2);
  }
  return 0;
}
