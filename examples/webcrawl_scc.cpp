// Scenario: partition a web crawl and extract its largest strongly
// connected component (the paper's SCC analytic on WDC12), through
// the unified vertex-program engine API.
//
// Demonstrates the directed-graph path: a crawl is generated (or could
// be loaded with graph/io.hpp), symmetrized for partitioning, and the
// *directed* graph is redistributed by the computed partition before
// running the engine-native kernels — largest_scc with an
// engine::Config (trim + forward/backward reachability, all riding
// the config's transport knobs), WCC as a WccProgram under
// engine::run, and the new delta-capped SSSP from the crawl root.
#include <cstdio>
#include <memory>

#include "analytics/analytics.hpp"
#include "analytics/programs.hpp"
#include "core/xtrapulp.hpp"
#include "engine/engine.hpp"
#include "gen/generators.hpp"
#include "graph/dist_graph.hpp"
#include "graph/io.hpp"
#include "mpisim/comm.hpp"

int main(int argc, char** argv) {
  using namespace xtra;
  constexpr int kRanks = 4;

  // Load a crawl from file if given, else generate a WDC12-like one.
  graph::EdgeList crawl;
  if (argc > 1) {
    crawl = graph::read_edge_list_text(argv[1]);
    std::printf("loaded %s: %llu vertices, %lld arcs\n", argv[1],
                static_cast<unsigned long long>(crawl.n),
                static_cast<long long>(crawl.edge_count()));
  } else {
    crawl = gen::webcrawl(40'000, 18, 11);
  }
  const graph::EdgeList undirected = graph::symmetrized(crawl);

  // Partition the undirected view; the paper initializes web graphs
  // from the crawl order (block) and lets the balance stages run. The
  // same Params seed the engine config the analytics run under.
  core::Params params;
  params.nparts = kRanks;
  params.init = core::InitStrategy::kBlock;
  const engine::Config cfg = engine::Config::from_params(params);
  std::vector<part_t> parts;
  sim::run_world(kRanks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, undirected, graph::VertexDist::block(undirected.n, kRanks));
    const auto r = core::partition(comm, g, params);
    const auto global = core::gather_global_parts(comm, g, r.parts);
    if (comm.rank() == 0) parts = global;
  });

  // Redistribute the directed crawl by partition and run the
  // analytics through the engine.
  auto owners = std::make_shared<std::vector<int>>(parts.begin(), parts.end());
  sim::run_world(kRanks, [&](sim::Comm& comm) {
    const auto g = graph::build_dist_graph(
        comm, crawl, graph::VertexDist::explicit_map(crawl.n, kRanks, owners));
    const analytics::SccResult scc = analytics::largest_scc(comm, g, cfg);

    analytics::WccProgram wcc;
    const engine::Stats wcc_st = engine::run(comm, g, wcc, cfg);

    const analytics::SsspResult paths =
        analytics::sssp(comm, g, /*root=*/0, /*delta=*/8,
                        /*max_weight=*/16, /*weight_seed=*/1, cfg);

    if (comm.rank() == 0) {
      std::printf("largest SCC: %lld of %llu vertices (%.1f%%)\n",
                  static_cast<long long>(scc.scc_size),
                  static_cast<unsigned long long>(crawl.n),
                  100.0 * static_cast<double>(scc.scc_size) /
                      static_cast<double>(crawl.n));
      std::printf("weak components: %lld (largest %lld)\n",
                  static_cast<long long>(wcc.num_components),
                  static_cast<long long>(wcc.largest_size));
      std::printf("SCC supersteps: %lld, comm: %.1f KB/rank avg\n",
                  static_cast<long long>(scc.info.supersteps),
                  static_cast<double>(scc.info.comm_bytes) / 1024.0);
      std::printf("SSSP from crawl root: reached %lld, max dist %lld "
                  "(%lld supersteps)\n",
                  static_cast<long long>(paths.reached),
                  static_cast<long long>(paths.max_dist),
                  static_cast<long long>(paths.info.supersteps));
      std::printf("WCC engine stats: %s\n", wcc_st.to_json().c_str());
    }
  });
  return 0;
}
