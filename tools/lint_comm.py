#!/usr/bin/env python3
"""Repo lint for communication correctness and determinism (CI gate).

Rules, matched against comment- and string-stripped source:

  A  substrate-calls  Raw substrate calls (alltoallv*, win_*) may appear
                      only in the comm layer (src/comm/, src/mpisim/),
                      the verifier that sits under it (src/verify/), and
                      tests/. Everything else must route through
                      comm::Exchanger so phasing, billing, and channel
                      attribution stay in one place.
  B  randomness       std::rand/srand/random_device are banned
                      everywhere: all randomness flows from the seeded
                      SplitMix/hash generators so runs are reproducible.
  C  wall-clock       system_clock/gettimeofday/std::time/localtime are
                      banned in src/: deterministic paths must not read
                      calendar time (util::Timer's steady_clock is the
                      one sanctioned clock).
  D  thread-observables  par::current_slot()/this_thread::get_id/
                      pthread_self in src/ need a `lint-ok:` annotation
                      on the same line stating why the use cannot leak
                      into results (per-slot scratch, diagnostics); the
                      MPI+X contract says observables never key on the
                      executing worker.
  E  file-io          Direct file I/O (fopen/fread/fwrite, std::ifstream
                      and friends, mmap/mkstemp) in src/ may appear only
                      in src/graph/io and the segment-backing layer
                      (src/graph/segcache). Every spill byte must flow
                      through io::SpillFile so the out-of-core ledger
                      and cleanup stay accountable in one place.
  F  serve-purity     src/serve/ may read NO clock of any kind (chrono,
                      steady/system/high_resolution_clock,
                      clock_gettime, even util::Timer) and no thread
                      identity: the serving latency model is the
                      virtual clock (serve/clock.hpp), advanced only
                      from allreduced counters, and the determinism
                      contract (same seed + config => byte-identical
                      per-query latencies at any thread width) dies the
                      moment host time or a worker id leaks in.

A violation line can be waived with a trailing `// lint-ok: <reason>`
comment; rules A and F are deliberately not waivable.

Usage:  tools/lint_comm.py [--root DIR] [--self-test]
Exit status: 0 clean, 1 violations, 2 internal error.
"""

import argparse
import os
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples")
SOURCE_EXTS = (".cpp", ".hpp", ".cc", ".h")

# Rule A: token -> allowed path prefixes (POSIX-style, repo-relative).
SUBSTRATE_CALL = re.compile(
    r"\b(alltoallv(?:_bytes)?(?:_start|_finish)?|alltoall|"
    r"win_(?:expose|unexpose|get|put|fence|meta|bytes|exposed)|"
    r"find_free_(?:channel|window))\s*(?:<[^<>]*>\s*)?\("
)
SUBSTRATE_ALLOWED = (
    "src/comm/",
    "src/mpisim/",
    "src/verify/",
    "tests/",
    # The substrate micro-bench times the raw collectives themselves —
    # that baseline is the point; it cannot route through the Exchanger.
    "bench/bench_micro_exchange.cpp",
)

RANDOMNESS = re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b")

WALL_CLOCK = re.compile(
    r"\bsystem_clock\b|\bgettimeofday\s*\(|\bstd::time\s*\(|\blocaltime\s*\("
)

THREAD_OBSERVABLE = re.compile(
    r"\bcurrent_slot\s*\(|\bthis_thread::get_id\s*\(|\bpthread_self\s*\("
)
# The par:: layer defines/owns these; it is exempt from rule D.
THREAD_OBSERVABLE_EXEMPT = ("src/util/parallel.hpp", "src/util/parallel.cpp")

FILE_IO = re.compile(
    r"\bfopen\s*\(|\bfread\s*\(|\bfwrite\s*\(|"
    r"\b[io]?fstream\b|"
    r"\bmmap\s*\(|\bmunmap\s*\(|\bmkstemp\s*\("
)
# Rule E applies to src/ only; these own the spill path.
FILE_IO_ALLOWED = ("src/graph/io", "src/graph/segcache")

# Rule F: the serving subsystem's total clock/thread-identity ban.
# Strictly wider than rules C and D (even the sanctioned steady_clock
# Timer is out), scoped to src/serve/, and not waivable.
SERVE_PURITY = re.compile(
    r"\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b|"
    r"\bchrono\b|\bclock_gettime\s*\(|\bTimer\b|"
    r"\bcurrent_slot\s*\(|\bthis_thread::get_id\s*\(|\bpthread_self\s*\("
)
SERVE_DIR = "src/serve/"

LINT_OK = re.compile(r"lint-ok:")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so rules never fire on prose or error messages. The
    waiver token is matched against the ORIGINAL line, not this."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


def lint_file(relpath, text):
    """Yield (rule, lineno, line, message) violations for one file."""
    stripped = strip_comments_and_strings(text)
    raw_lines = text.splitlines()
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        waived = bool(LINT_OK.search(raw))

        if SUBSTRATE_CALL.search(line) and not relpath.startswith(
            SUBSTRATE_ALLOWED
        ):
            yield (
                "A",
                lineno,
                raw,
                "raw substrate call outside src/comm|src/mpisim|src/verify|"
                "tests — route through comm::Exchanger (not waivable)",
            )
        if RANDOMNESS.search(line) and not waived:
            yield (
                "B",
                lineno,
                raw,
                "unseeded randomness — use the seeded hash generators",
            )
        if relpath.startswith("src/"):
            if WALL_CLOCK.search(line) and not waived:
                yield (
                    "C",
                    lineno,
                    raw,
                    "wall-clock read in a deterministic path — use "
                    "util::Timer (steady_clock)",
                )
            if (
                THREAD_OBSERVABLE.search(line)
                and relpath not in THREAD_OBSERVABLE_EXEMPT
                and not waived
            ):
                yield (
                    "D",
                    lineno,
                    raw,
                    "worker-identity read without a `lint-ok:` annotation — "
                    "observables must not key on the executing thread",
                )
            if (
                FILE_IO.search(line)
                and not relpath.startswith(FILE_IO_ALLOWED)
                and not waived
            ):
                yield (
                    "E",
                    lineno,
                    raw,
                    "direct file I/O outside src/graph/io|src/graph/segcache "
                    "— spill through io::SpillFile",
                )
        if relpath.startswith(SERVE_DIR) and SERVE_PURITY.search(line):
            yield (
                "F",
                lineno,
                raw,
                "clock or thread-identity read in src/serve/ — serving "
                "latency is the virtual clock, advanced from allreduced "
                "counters only (not waivable)",
            )


def iter_sources(root):
    for top in SOURCE_DIRS:
        base = os.path.join(root, top)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root).replace(os.sep, "/")


def run_lint(root):
    violations = []
    for relpath in iter_sources(root):
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            text = f.read()
        violations.extend(
            (relpath, rule, lineno, line, msg)
            for rule, lineno, line, msg in lint_file(relpath, text)
        )
    return violations


# --- Self-test ---------------------------------------------------------

SELF_TEST_CASES = [
    # (relpath, source, expected rule letters)
    ("src/core/foo.cpp", "comm.alltoallv_bytes_start(p, 8, c);\n", ["A"]),
    ("src/core/foo.cpp", "x.win_get(0, t, 0, n, dst);\n", ["A"]),
    ("src/comm/foo.cpp", "comm.alltoallv_bytes_start(p, 8, c);\n", []),
    ("src/mpisim/foo.hpp", "win_put(0, t, 0, n, src);\n", []),
    ("src/verify/foo.cpp", "comm.win_fence(0);\n", []),
    ("tests/test_x.cpp", "comm.win_fence(0);\n", []),
    # Rule A fires even with a waiver.
    ("src/core/foo.cpp", "comm.win_fence(0);  // lint-ok: nope\n", ["A"]),
    # Comments and strings never fire.
    ("src/core/foo.cpp", "// calls win_get(0) and std::rand()\n", []),
    ("src/core/foo.cpp", 'err = "win_get(0) failed: std::rand()";\n', []),
    ("src/core/foo.cpp", "/* system_clock in prose\n spanning */ int x;\n", []),
    ("src/core/foo.cpp", "int n = std::rand();\n", ["B"]),
    ("tests/test_x.cpp", "std::random_device rd;\n", ["B"]),
    ("bench/bench_x.cpp", "srand(42);\n", ["B"]),
    ("src/util/timer.hpp", "auto t = std::chrono::steady_clock::now();\n", []),
    ("src/util/foo.cpp", "auto t = system_clock::now();\n", ["C"]),
    # Wall clock is src-only (tools/tests may timestamp reports).
    ("tests/test_x.cpp", "auto t = system_clock::now();\n", []),
    ("src/engine/foo.hpp", "int s = par::current_slot();\n", ["D"]),
    (
        "src/engine/foo.hpp",
        "int s = par::current_slot();  // lint-ok: per-slot scratch\n",
        [],
    ),
    ("src/util/parallel.cpp", "int current_slot() { return tl_slot; }\n", []),
    ("src/core/foo.cpp", "auto id = std::this_thread::get_id();\n", ["D"]),
    # A declaration is not a call: no parenthesis-following-token, no fire.
    ("src/core/foo.cpp", "count_t win_bytes_total;\n", []),
    ("src/core/foo.cpp", 'FILE* f = std::fopen(p, "rb");\n', ["E"]),
    ("src/engine/foo.cpp", "std::ifstream in(path);\n", ["E"]),
    ("src/comm/foo.cpp", "void* m = ::mmap(nullptr, n, p, f, fd, 0);\n", ["E"]),
    ("src/core/foo.cpp", "int fd = mkstemp(buf.data());\n", ["E"]),
    # The spill layer owns direct I/O.
    ("src/graph/io.cpp", 'FILE* f = std::fopen(p, "rb");\n', []),
    ("src/graph/segcache.cpp", "void* m = ::mmap(0, n, p, f, fd, 0);\n", []),
    # Rule E is src-only (tools/tests/bench may read fixtures) + waivable.
    ("tests/test_x.cpp", "std::ifstream in(path);\n", []),
    ("bench/bench_x.cpp", 'FILE* f = std::fopen(p, "r");\n', []),
    (
        "src/metrics/foo.cpp",
        "std::ofstream out(p);  // lint-ok: report sink, not spill\n",
        [],
    ),
    # Prose never fires.
    ("src/core/foo.cpp", "// uses mmap() under the hood\n", []),
    # Rule F: the serve subsystem's total clock/thread ban.
    ("src/serve/foo.cpp", "util::Timer t;\n", ["F"]),
    ("src/serve/foo.cpp",
     "auto t = std::chrono::steady_clock::now();\n", ["F"]),
    # system_clock in serve trips both the src-wide rule C and F.
    ("src/serve/foo.cpp", "auto t = system_clock::now();\n", ["C", "F"]),
    ("src/serve/foo.cpp", "clock_gettime(CLOCK_MONOTONIC, &ts);\n", ["F"]),
    # A waiver silences rule D but never F.
    ("src/serve/foo.cpp",
     "int s = par::current_slot();  // lint-ok: scratch\n", ["F"]),
    ("src/serve/foo.cpp", "int s = par::current_slot();\n", ["D", "F"]),
    # F is scoped to src/serve/ — the engine keeps its Timer.
    ("src/engine/foo.cpp", "util::Timer t;\n", []),
    # The virtual clock itself is fine; prose never fires.
    ("src/serve/clock2.hpp", "double now() { return now_; }\n", []),
    ("src/serve/foo.cpp", "// wall clock and Timer stay out\n", []),
]


def self_test():
    failures = 0
    for relpath, source, expected in SELF_TEST_CASES:
        got = sorted({rule for rule, _, _, _ in lint_file(relpath, source)})
        if got != sorted(expected):
            failures += 1
            print(
                f"self-test FAIL: {relpath!r} {source!r}: "
                f"expected {expected}, got {got}",
                file=sys.stderr,
            )
    if failures:
        print(f"self-test: {failures} case(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: all {len(SELF_TEST_CASES)} cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the rule-engine self-test and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    violations = run_lint(args.root)
    for relpath, rule, lineno, line, msg in violations:
        print(f"{relpath}:{lineno}: [rule {rule}] {msg}")
        print(f"    {line.strip()}")
    if violations:
        print(f"lint_comm: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint_comm: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
